package serve

// walrecover.go rebuilds a Server from a WAL directory: the newest valid
// snapshot file (snap-<lsn>.snap, written by Server.CheckpointWAL) restored
// through RestoreServer, then every WAL segment replayed in LSN order.
// Replay is exact, not best-effort — each record's LSN (segment base +
// offset) is compared against the snapshot's floor and the target job's
// recorded LSN, so a record is applied exactly once no matter where the
// snapshot cut fell — and it truncates at the first torn or corrupt frame
// (the tail a crash can legitimately leave), never applying anything beyond
// it. A gap in the log (segments missing between the floor and the retained
// tail) fails typed with ErrWALGap rather than silently skipping history.

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
)

// RecoveryStats summarizes a Recover pass.
type RecoveryStats struct {
	// SnapshotPath is the snapshot file the recovery restored from ("" when
	// it started empty); SnapshotLSN its floor stamp.
	SnapshotPath string
	SnapshotLSN  uint64
	// SegmentsScanned counts WAL segment files read during replay.
	SegmentsScanned int
	// RecordsApplied / RecordsSkipped count replayed WAL records: applied
	// mutations vs records already reflected in the snapshot (or shadowed
	// by a newer segment). RecordsOrphaned counts records for jobs that no
	// longer exist (their drop landed before the snapshot cut).
	RecordsApplied, RecordsSkipped, RecordsOrphaned int
	// TornTail reports that replay stopped at a torn or corrupt frame — the
	// expected signature of a crash mid-append; everything acknowledged
	// before it was recovered.
	TornTail bool
	// NextLSN is the sequence number the reopened WAL will assign next:
	// NextLSN-1 mutations are reflected in the recovered server.
	NextLSN uint64
}

func (r RecoveryStats) String() string {
	snap := "empty"
	if r.SnapshotPath != "" {
		snap = fmt.Sprintf("%s (floor %d)", filepath.Base(r.SnapshotPath), r.SnapshotLSN)
	}
	return fmt.Sprintf("snapshot %s, %d segments, %d applied, %d skipped, %d orphaned, torn=%v, next LSN %d",
		snap, r.SegmentsScanned, r.RecordsApplied, r.RecordsSkipped, r.RecordsOrphaned, r.TornTail, r.NextLSN)
}

// Recover rebuilds a server from dir (point-in-time recovery: newest valid
// snapshot + WAL replay), reopens the log for appending at the recovered
// position, and attaches it, so the returned server logs every subsequent
// mutation. dir must exist; a fresh empty directory recovers to an empty
// server (first boot). cfg follows NewServer's defaulting and must carry a
// predictor factory equivalent to the crashed server's (see
// Config.NewPredictor). The caller owns Close on the returned WAL.
func Recover(dir string, cfg Config, opts WALOptions) (*Server, *WAL, RecoveryStats, error) {
	opts = opts.withDefaults()
	var rst RecoveryStats

	snaps, err := listSorted(opts.FS, dir, snapPrefix, snapSuffix)
	if err != nil {
		return nil, nil, rst, fmt.Errorf("serve: recover: wal dir %s: %w", dir, err)
	}
	segs, err := listSorted(opts.FS, dir, segPrefix, segSuffix)
	if err != nil {
		return nil, nil, rst, fmt.Errorf("serve: recover: wal dir %s: %w", dir, err)
	}

	// Newest restorable snapshot wins; a corrupt one (crash while its
	// predecessor segments were already retired would lose data, which is
	// why CheckpointWAL retains one older generation) falls back to the
	// next. No snapshot at all means a full-log replay from LSN 1.
	sv := (*Server)(nil)
	var floor uint64
	for i := len(snaps) - 1; i >= 0 && sv == nil; i-- {
		path := filepath.Join(dir, snaps[i].name)
		rc, err := opts.FS.Open(path)
		if err != nil {
			continue
		}
		restored, fl, err := restoreServer(rc, cfg)
		rc.Close()
		if err != nil {
			continue
		}
		sv, floor = restored, fl
		rst.SnapshotPath, rst.SnapshotLSN = path, fl
	}
	if sv == nil {
		sv = NewServer(cfg)
	}

	// Replay segments in base order. cursor is the next LSN the recovered
	// state still needs; records below it are skipped (already reflected),
	// and a segment starting beyond it is a hole in history.
	cursor := floor
	if cursor < 1 {
		cursor = 1
	}
	for _, seg := range segs {
		if seg.seq > cursor {
			return nil, nil, rst, fmt.Errorf(
				"serve: recover: %w: segment %s starts at LSN %d but records from %d are missing",
				ErrWALGap, seg.name, seg.seq, cursor)
		}
		end, torn, err := replaySegment(sv, opts.FS, filepath.Join(dir, seg.name), seg.seq, cursor, floor, &rst)
		rst.SegmentsScanned++
		if err != nil {
			return nil, nil, rst, err
		}
		if end > cursor {
			cursor = end
		}
		if torn {
			rst.TornTail = true
		}
	}
	rst.NextLSN = cursor

	w, err := openWALAt(dir, cursor, opts)
	if err != nil {
		return nil, nil, rst, err
	}
	sv.attachWAL(w)
	return sv, w, rst, nil
}

// replaySegment replays one segment's records into sv. base is the LSN the
// file name claims for the first record (cross-checked against the
// segment's FrameLSNMark header); records below cursor are skipped as
// already applied, and floor marks the snapshot cut for the per-job exact-
// once rule. Returns the LSN one past the last decodable record and whether
// the segment ended in a torn/corrupt frame instead of a clean EOF.
func replaySegment(sv *Server, fs WALFS, path string, base, cursor, floor uint64, rst *RecoveryStats) (uint64, bool, error) {
	rc, err := fs.Open(path)
	if err != nil {
		return base, false, fmt.Errorf("serve: recover: %w", err)
	}
	defer rc.Close()
	wr := NewWireReader(rc)
	lsn := base
	first := true
	for {
		kind, payload, err := wr.next()
		if err == io.EOF {
			return lsn, false, nil
		}
		if errors.Is(err, ErrTruncated) || errors.Is(err, ErrCorrupt) ||
			errors.Is(err, ErrBadMagic) || errors.Is(err, ErrVersion) {
			// The tail a crash leaves: a partially written frame, or a
			// partially written segment header. Everything before it is
			// recovered; nothing after it is trusted.
			return lsn, true, nil
		}
		if err != nil {
			return lsn, false, fmt.Errorf("serve: recover: %s: %w", filepath.Base(path), err)
		}
		if first {
			first = false
			declared, err := decodeLSNMarkPayload(payload)
			if kind != FrameLSNMark || err != nil || declared != base {
				// A segment that does not open with its own base LSN cannot
				// be placed in the sequence; treat it as wholly torn.
				return lsn, true, nil
			}
			continue
		}
		recLSN := lsn
		lsn++
		if recLSN < cursor {
			rst.RecordsSkipped++ // shadowed by an earlier segment's replay
			continue
		}
		if err := applyWALRecord(sv, kind, payload, recLSN, floor, rst); err != nil {
			return recLSN, false, fmt.Errorf("serve: recover: %s: record at LSN %d: %w",
				filepath.Base(path), recLSN, err)
		}
	}
}

// applyWALRecord applies one decoded WAL record to sv, enforcing the
// exact-once rules: records below the snapshot floor are skipped wholesale
// (the floor proof in snapshotWithFloor guarantees they are reflected), and
// records at or above it are skipped per job when the job's snapshot
// section already carries an LSN at least as new (the mid-traffic snapshot
// case). Mutations that decode but cannot apply cleanly mean the log and
// the snapshot disagree — recovery fails typed instead of guessing.
// Recovery is single-threaded, so the jobState resolved once per record
// stays valid across the apply (only a FrameDrop removes it, and that is
// the record being applied).
func applyWALRecord(sv *Server, kind FrameKind, payload []byte, lsn, floor uint64, rst *RecoveryStats) error {
	if lsn < floor {
		rst.RecordsSkipped++
		return nil
	}
	switch kind {
	case FrameSpec:
		sp, err := decodeSpecPayload(payload)
		if err != nil {
			return err
		}
		if j, ok := sv.reg.shardFor(sp.JobID).lookup(sp.JobID); ok {
			if j.lsn >= lsn {
				rst.RecordsSkipped++
				return nil
			}
			return fmt.Errorf("%w: job %d re-registered at LSN %d while live since LSN %d",
				ErrCorrupt, sp.JobID, lsn, j.lsn)
		}
		if err := sv.StartJob(sp, nil); err != nil {
			return err
		}
		if j, ok := sv.reg.shardFor(sp.JobID).lookup(sp.JobID); ok {
			j.lsn = lsn
		}
		rst.RecordsApplied++
		return nil
	case FrameEvent, FrameFinish:
		var ev Event
		var err error
		if kind == FrameEvent {
			ev, err = decodeEventPayload(payload)
		} else {
			ev.Kind = EventJobFinish
			ev.JobID, ev.Time, err = decodeFinishPayload(payload)
		}
		if err != nil {
			return err
		}
		j, ok := sv.reg.shardFor(ev.JobID).lookup(ev.JobID)
		if !ok {
			// The job's drop landed before the snapshot cut; its late events
			// (a benign race the live server drains as drops) have nothing
			// left to apply to.
			rst.RecordsOrphaned++
			return nil
		}
		if j.lsn >= lsn {
			rst.RecordsSkipped++
			return nil
		}
		if err := sv.Ingest(ev); err != nil {
			return err
		}
		j.lsn = lsn
		rst.RecordsApplied++
		return nil
	case FrameDrop:
		jobID, err := decodeDropPayload(payload)
		if err != nil {
			return err
		}
		j, ok := sv.reg.shardFor(jobID).lookup(jobID)
		if !ok {
			rst.RecordsOrphaned++
			return nil
		}
		if j.lsn >= lsn {
			rst.RecordsSkipped++
			return nil
		}
		if err := sv.DropJob(jobID); err != nil {
			return err
		}
		rst.RecordsApplied++
		return nil
	default:
		return fmt.Errorf("%w: frame kind %d in a WAL segment", ErrCorrupt, kind)
	}
}

// CheckpointWAL writes a durable snapshot into the WAL directory (stamped
// with its floor LSN, via a temp file renamed into place) and retires every
// WAL segment wholly below the floor. One older snapshot generation is kept
// so a crash that corrupts the newest file cannot orphan the log; older
// ones and stale temp files are pruned. Returns the snapshot path and how
// many segments were retired.
func (sv *Server) CheckpointWAL() (string, int, error) {
	w := sv.wal
	if w == nil {
		return "", 0, fmt.Errorf("serve: checkpoint: no WAL attached")
	}
	fs, dir := w.opts.FS, w.dir
	// The snapshot itself runs outside the WAL mutex (it takes job locks;
	// appends take job locks before the WAL's — holding both here would
	// deadlock against ingest). ckptMu serializes whole checkpoints, so two
	// concurrent calls can never interleave writes into one temp file or
	// race the prune/retire bookkeeping.
	w.ckptMu.Lock()
	defer w.ckptMu.Unlock()
	tmp := filepath.Join(dir, "checkpoint"+tmpSuffix)
	f, err := fs.Create(tmp)
	if err != nil {
		return "", 0, fmt.Errorf("serve: checkpoint: %w", err)
	}
	floor, err := sv.snapshotWithFloor(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fs.Remove(tmp)
		return "", 0, fmt.Errorf("serve: checkpoint: %w", err)
	}
	path := filepath.Join(dir, snapName(floor))
	if err := fs.Rename(tmp, path); err != nil {
		fs.Remove(tmp)
		return "", 0, fmt.Errorf("serve: checkpoint: %w", err)
	}
	// The rename must be durable before anything it supersedes is removed;
	// the prune/retire unlinks below need no dir sync of their own — a
	// forgotten unlink only leaves an extra file recovery tolerates.
	if err := fs.SyncDir(dir); err != nil {
		return "", 0, fmt.Errorf("serve: checkpoint: sync dir: %w", err)
	}
	// Prune snapshots beyond the newest two, then retire segments only up
	// to the oldest *kept* snapshot's floor — both kept generations must
	// still chain to the retained log, or the fallback snapshot would be
	// useless exactly when it is needed.
	retireFloor := floor
	snaps, err := listSorted(fs, dir, snapPrefix, snapSuffix)
	if err == nil {
		for i := 0; i+2 < len(snaps); i++ {
			fs.Remove(filepath.Join(dir, snaps[i].name))
		}
		if len(snaps) >= 2 && snaps[len(snaps)-2].seq < retireFloor {
			retireFloor = snaps[len(snaps)-2].seq
		}
	}
	retired, err := w.RetireBelow(retireFloor)
	if err != nil {
		return path, retired, fmt.Errorf("serve: checkpoint: retire: %w", err)
	}
	return path, retired, nil
}
