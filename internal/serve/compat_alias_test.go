package serve

// compat_alias_test.go is the compile-time half of compat.go's contract:
// every aliased name must be THE type or value from its home package, not
// a converted lookalike. Type identity is asserted by assignments that
// only compile when the two sides are the same type; error identity is
// asserted both ways through errors.Is, because a var alias that was
// accidentally rewrapped (`var ErrCorrupt = fmt.Errorf("%w", ...)`) would
// still compile but break every caller matching on the home package's
// value.

import (
	"errors"
	"testing"

	"repro/internal/wal"
	"repro/internal/wire"
)

// Compile-time type identity: an alias is the same type, so a value of the
// home type assigns without conversion. These lines fail to compile if any
// alias decays into a defined (distinct) type.
var (
	_ = func(e wire.Event) Event { return e }
	_ = func(k wire.EventKind) EventKind { return k }
	_ = func(s wire.JobSpec) JobSpec { return s }
	_ = func(m wire.RefitMode) RefitMode { return m }
	_ = func(w *wal.WAL) *WAL { return w }
	_ = func(o wal.Options) WALOptions { return o }
	_ = func(f wal.FS) WALFS { return f }
	_ = func(f wal.File) WALFile { return f }
	_ = func(s wal.Stats) WALStats { return s }
	_ = func(s wal.StreamStats) WALStreamStats { return s }
	_ = func(r wal.RecoveryStats) RecoveryStats { return r }
	_ = func(r wal.VerifyReport) WALVerifyReport { return r }
	_ = func(r *wire.Reader) *WireReader { return r }
	_ = func(w *wire.Writer) *WireWriter { return w }
)

// Compile-time value identity for the error aliases the issue pins: the
// serve-package names must BE error values (and for the moved ones, the
// same variable as the home package's).
var (
	_ error = ErrUnknownJob
	_ error = ErrOverloaded
	_ error = ErrCorrupt
)

// TestErrorAliasIdentity: errors.Is must match in both directions through
// every alias — the exact identities cmd/ and the HTTP front's error
// mapping rely on.
func TestErrorAliasIdentity(t *testing.T) {
	pairs := []struct {
		name       string
		alias, hom error
	}{
		{"ErrCorrupt", ErrCorrupt, wire.ErrCorrupt},
		{"ErrBadMagic", ErrBadMagic, wire.ErrBadMagic},
		{"ErrVersion", ErrVersion, wire.ErrVersion},
		{"ErrTruncated", ErrTruncated, wire.ErrTruncated},
		{"ErrWALFailed", ErrWALFailed, wal.ErrFailed},
		{"ErrWALClosed", ErrWALClosed, wal.ErrClosed},
		{"ErrWALGap", ErrWALGap, wal.ErrGap},
	}
	for _, p := range pairs {
		if p.alias != p.hom {
			t.Errorf("%s is not the home package's value", p.name)
		}
		if !errors.Is(p.alias, p.hom) || !errors.Is(p.hom, p.alias) {
			t.Errorf("%s: errors.Is does not match both ways", p.name)
		}
	}
	// The serve-native errors still answer to their own identity (they
	// never moved; the pin is that the split didn't rewrap them).
	for _, e := range []error{ErrUnknownJob, ErrOverloaded, ErrShed} {
		if !errors.Is(e, e) {
			t.Errorf("%v lost self-identity", e)
		}
	}
	// Constants carried over the split.
	if WireVersion != wire.Version {
		t.Errorf("WireVersion %d != wire.Version %d", WireVersion, wire.Version)
	}
	if DefaultWALSegmentBytes != wal.DefaultSegmentBytes {
		t.Errorf("DefaultWALSegmentBytes %d != wal.DefaultSegmentBytes %d",
			DefaultWALSegmentBytes, wal.DefaultSegmentBytes)
	}
}
