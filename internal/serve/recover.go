package serve

import (
	"fmt"
	"io"

	"repro/internal/wal"
	"repro/internal/wire"
)

// Recover rebuilds a server from dir (point-in-time recovery: newest valid
// snapshot + WAL replay), reopens the log for appending at the recovered
// position, and attaches it, so the returned server logs every subsequent
// mutation (and, when WALOptions arms the checkpoint policy, checkpoints
// itself). dir must exist; a fresh empty directory recovers to an empty
// server (first boot). cfg follows NewServer's defaulting and must carry a
// predictor factory equivalent to the crashed server's (see
// Config.NewPredictor). The caller owns Close on the returned WAL.
func Recover(dir string, cfg Config, opts WALOptions) (*Server, *WAL, RecoveryStats, error) {
	opts = opts.WithDefaults()
	var rst RecoveryStats

	snaps, err := wal.Snapshots(opts.FS, dir)
	if err != nil {
		return nil, nil, rst, fmt.Errorf("serve: recover: wal dir %s: %w", dir, err)
	}

	// Newest restorable snapshot wins; a corrupt one (crash while its
	// predecessor segments were already retired would lose data, which is
	// why checkpoints retain one older generation) falls back to the next.
	// No snapshot at all means a full-log replay from LSN 1.
	sv := (*Server)(nil)
	var floor uint64
	for i := len(snaps) - 1; i >= 0 && sv == nil; i-- {
		path := snaps[i]
		rc, err := opts.FS.Open(path)
		if err != nil {
			continue
		}
		restored, fl, err := restoreServer(rc, cfg)
		rc.Close()
		if err != nil {
			continue
		}
		sv, floor = restored, fl
		rst.SnapshotPath, rst.SnapshotLSN = path, fl
	}
	if sv == nil {
		sv = NewServer(cfg)
	}

	scan, err := wal.ScanDir(opts.FS, dir, floor, true, &rst, func(lsn uint64, kind wire.FrameKind, payload []byte) error {
		return applyWALRecord(sv, kind, payload, lsn, floor, &rst)
	})
	if err != nil {
		return nil, nil, rst, err
	}
	rst.NextLSN = scan.NextLSN()

	w, err := wal.Open(dir, sv.NumShards(), scan, opts)
	if err != nil {
		return nil, nil, rst, err
	}
	rst.Streams = w.Streams()
	sv.attachWAL(w)
	return sv, w, rst, nil
}

// applyWALRecord applies one decoded WAL record to sv, enforcing the
// exact-once rules: records below the snapshot floor are skipped wholesale
// (the floor proof in snapshotWithFloor guarantees they are reflected), and
// records at or above it are skipped per job when the job's snapshot
// section already carries an LSN at least as new (the mid-traffic snapshot
// case). Mutations that decode but cannot apply cleanly mean the log and
// the snapshot disagree — recovery fails typed instead of guessing.
// Recovery is single-threaded, so the jobState resolved once per record
// stays valid across the apply (only a wire.FrameDrop removes it, and that is
// the record being applied).
func applyWALRecord(sv *Server, kind wire.FrameKind, payload []byte, lsn, floor uint64, rst *RecoveryStats) error {
	if lsn < floor {
		rst.RecordsSkipped++
		return nil
	}
	switch kind {
	case wire.FrameSpec:
		sp, err := wire.DecodeSpecPayload(payload)
		if err != nil {
			return err
		}
		if j, ok := sv.reg.shardFor(sp.JobID).lookup(sp.JobID); ok {
			if j.lsn >= lsn {
				rst.RecordsSkipped++
				return nil
			}
			return fmt.Errorf("%w: job %d re-registered at LSN %d while live since LSN %d",
				ErrCorrupt, sp.JobID, lsn, j.lsn)
		}
		if err := sv.StartJob(sp, nil); err != nil {
			return err
		}
		if j, ok := sv.reg.shardFor(sp.JobID).lookup(sp.JobID); ok {
			j.lsn = lsn
		}
		rst.RecordsApplied++
		return nil
	case wire.FrameEvent, wire.FrameFinish:
		var ev Event
		var err error
		if kind == wire.FrameEvent {
			ev, err = wire.DecodeEventPayload(payload)
		} else {
			ev.Kind = EventJobFinish
			ev.JobID, ev.Time, err = wire.DecodeFinishPayload(payload)
		}
		if err != nil {
			return err
		}
		j, ok := sv.reg.shardFor(ev.JobID).lookup(ev.JobID)
		if !ok {
			// The job's drop landed before the snapshot cut; its late events
			// (a benign race the live server drains as drops) have nothing
			// left to apply to.
			rst.RecordsOrphaned++
			return nil
		}
		if j.lsn >= lsn {
			rst.RecordsSkipped++
			return nil
		}
		if err := sv.Ingest(ev); err != nil {
			return err
		}
		j.lsn = lsn
		rst.RecordsApplied++
		return nil
	case wire.FrameDrop:
		jobID, err := wire.DecodeDropPayload(payload)
		if err != nil {
			return err
		}
		j, ok := sv.reg.shardFor(jobID).lookup(jobID)
		if !ok {
			rst.RecordsOrphaned++
			return nil
		}
		if j.lsn >= lsn {
			rst.RecordsSkipped++
			return nil
		}
		if err := sv.DropJob(jobID); err != nil {
			return err
		}
		rst.RecordsApplied++
		return nil
	default:
		return fmt.Errorf("%w: frame kind %d in a WAL segment", ErrCorrupt, kind)
	}
}

// CheckpointWAL writes a durable snapshot into the WAL directory (stamped
// with its floor LSN) and retires every WAL segment wholly below the
// floor, per stream; the file mechanics (temp file, rename, pruning to two
// kept generations, retirement) are wal.Checkpoint's. The automatic
// checkpoint policy (WALOptions.CheckpointEvery / CheckpointBytes) calls
// this on its triggers; explicit calls remain available and serialize with
// it. Returns the snapshot path and how many segments were retired.
func (sv *Server) CheckpointWAL() (string, int, error) {
	w := sv.wal
	if w == nil {
		return "", 0, fmt.Errorf("serve: checkpoint: no WAL attached")
	}
	// The snapshot runs outside the stream mutexes (it takes job locks;
	// appends take job locks before a stream's — holding both would
	// deadlock against ingest); wal.Checkpoint serializes whole
	// checkpoints against each other.
	return w.Checkpoint(func(f io.Writer) (uint64, error) {
		return sv.snapshotWithFloor(f)
	})
}
