package serve

// overload.go is the overload-control subsystem: what the server does when
// offered load exceeds what it can absorb, decided by policy instead of by
// whichever queue happens to fill first.
//
// The taxonomy, in the order a request meets it:
//
//	rate limit (HTTP front)   per-client token buckets. A client whose
//	                          bucket cannot pay for a request is refused
//	                          atomically at request start (429, nothing
//	                          applied — always safe to retry); mid-batch,
//	                          an empty bucket sheds heartbeats and lets
//	                          everything else run the bucket negative, so
//	                          a partially applied batch is never rejected.
//	ingest queue (per shard)  a bounded admission semaphore. When full,
//	                          heartbeats are shed (ErrShed) before any
//	                          state is touched; starts, finishes, and
//	                          job-finishes are never shed — they carry
//	                          labels and protocol structure — and instead
//	                          wait for a slot (backpressure).
//	refit queue (per shard)   bounded by count. At the bound a new fit
//	                          runs inline on the ingesting goroutine
//	                          (counted, and applied at the same stream
//	                          position a pooled fit would be) instead of
//	                          growing the queue without limit.
//	degraded queries          a query that cannot take the job lock within
//	                          Config.DegradedAfter is answered from the
//	                          last published generation's precomputed
//	                          verdicts, flagged Stale, instead of queueing
//	                          behind a refit or an ingest burst.
//
// Shedding happens before lookup, validation, or logging, so a shed event
// leaves no trace anywhere: not in state, not in counters, not in the WAL.
// Recovery therefore replays exactly the accepted stream — the equivalence
// and torture tests hold with shedding enabled because the durable log IS
// the post-shedding stream.
//
// A shed heartbeat is coalesced, not lost, in the only sense that matters
// to the model: heartbeats carry a task's latest feature observation and
// newer ones supersede older ones wholesale, so dropping one under pressure
// means the task's next accepted heartbeat delivers the fresher view (or
// the task finishes, which carries its label regardless). Finishes are never
// shed precisely because they are the one event class whose information —
// the task's true latency label — cannot be recovered from later traffic.

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrShed reports an event refused by load shedding: the shard's ingest
// queue was at its bound and the event is of a sheddable class (heartbeats
// only). It is errors.Is-matchable through every wrapping layer; the HTTP
// front end counts shed frames in IngestResult.Shed and continues the batch
// rather than failing it. A shed event left no trace — it was not applied,
// not counted, and not logged.
var ErrShed = errors.New("event shed under overload")

// Overload-control defaults. The ingest bound is per shard and counts
// admitted-but-unfinished ingest calls, so it needs to cover only a burst of
// concurrent requests, not a backlog; the refit bound covers the pool queue,
// whose depth is already naturally limited to the shard's job population.
// Both defaults are far above what steady traffic reaches — they exist to
// bound the pathological case, not to shape the normal one.
const (
	// DefaultIngestQueue is the per-shard ingest admission bound.
	DefaultIngestQueue = 256
	// DefaultRefitQueue is the per-shard refit queue bound.
	DefaultRefitQueue = 64
)

// RetryAfterOutageSeconds is the Retry-After hint for 503 responses: a
// wedged or closed write-ahead log (disk full, I/O error, shutdown) clears
// on operator timescales, not queue-drain timescales, so the hint is long
// and fixed — unlike transient 429 throttling, whose hint tracks live load
// (Server.RetryHint).
const RetryAfterOutageSeconds = 30

// MaxRetryHintSeconds caps the load-derived transient back-off hint.
const MaxRetryHintSeconds = 10

// OverloadStats is the overload-control taxonomy, aggregated across shards
// (and, for the rate-limit counters, the HTTP front). All counters are
// cumulative since server start.
type OverloadStats struct {
	// ShedHeartbeats counts heartbeats refused at saturated ingest queues.
	// Each is coalesced into its task's next accepted observation (newer
	// features supersede older ones wholesale) or dropped outright if none
	// arrives.
	ShedHeartbeats uint64
	// ShedFinishes is structurally zero — finishes carry labels and are
	// never shed. The counter exists so the invariant is observable, not
	// assumed.
	ShedFinishes uint64
	// IngestWaits counts non-sheddable events (starts, finishes,
	// job-finishes) that had to wait for an ingest-queue slot: backpressure
	// applied instead of shedding.
	IngestWaits uint64
	// IngestQueueDepth is a live gauge: admitted ingest calls currently
	// holding queue slots, summed across shards. IngestQueueBound is the
	// per-shard bound (0 = unbounded).
	IngestQueueDepth int
	IngestQueueBound int
	// RateLimited counts ingest requests refused atomically at request
	// start by per-client token buckets; RateShedHeartbeats counts
	// heartbeat frames shed mid-batch at empty buckets. Both are zero
	// unless Config.ClientRate is set (they are HTTP-front counters, so
	// only /stats responses carry them — in-process Stats() reports 0).
	RateLimited        uint64
	RateShedHeartbeats uint64
	// DegradedQueries counts task verdicts answered from the stale
	// published view because the job lock was not free within
	// Config.DegradedAfter.
	DegradedQueries uint64
	// InlineRefits counts fits run on the ingest path because the shard's
	// refit queue was at its bound; RefitQueueBound is that bound
	// (0 = unbounded).
	InlineRefits    uint64
	RefitQueueBound int
	// RetryHintSeconds is the current load-derived Retry-After hint
	// attached to transient 429 responses (see Server.RetryHint).
	RetryHintSeconds int
}

// String renders the taxonomy compactly.
func (o OverloadStats) String() string {
	return fmt.Sprintf("shed_hb=%d shed_finish=%d waits=%d queue=%d/%d rate_limited=%d rate_shed=%d degraded=%d inline_refits=%d retry_hint=%ds",
		o.ShedHeartbeats, o.ShedFinishes, o.IngestWaits, o.IngestQueueDepth, o.IngestQueueBound,
		o.RateLimited, o.RateShedHeartbeats, o.DegradedQueries, o.InlineRefits, o.RetryHintSeconds)
}

// lockWithin tries to take mu, giving up after d. It spins on TryLock with
// short sleeps rather than arming a timer per query: d is a few
// milliseconds, and the common case (lock free, or freed within a sleep or
// two) must stay allocation-free on the query path.
func lockWithin(mu *sync.Mutex, d time.Duration) bool {
	if mu.TryLock() {
		return true
	}
	deadline := time.Now().Add(d)
	wait := 50 * time.Microsecond
	for {
		time.Sleep(wait)
		if mu.TryLock() {
			return true
		}
		if !time.Now().Before(deadline) {
			return false
		}
		if wait < time.Millisecond {
			wait *= 2
		}
	}
}

// staleView is a job's precomputed degraded-query answer: every task's
// verdict as of the last applied refit (or install), swapped in atomically
// so the degraded path reads it without any lock. Built only when
// Config.DegradedAfter enables degraded queries.
type staleView struct {
	checkpoint int
	verdicts   []TaskVerdict // indexed by TaskID; each has Stale set
}
