package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
)

// scaledWorkload shrinks a real trace job's virtual timeline by factor c so
// that real-time (1x) replay completes in test time: every timestamp,
// latency, horizon, and latency threshold scales together, which preserves
// the protocol structure exactly (checkpoint gating, straggler sets,
// feature vectors are untouched).
func scaledWorkload(t testing.TB, n int, seed uint64, c float64) ([]JobSpec, []Event) {
	t.Helper()
	jobs, sims := smallJobs(t, n, seed)
	specs := make([]JobSpec, n)
	streams := make([][]Event, n)
	for i := range jobs {
		sp := SpecFor(sims[i], uint64(100+i))
		sp.TauStra *= c
		sp.Horizon *= c
		specs[i] = sp
		evs := JobEvents(jobs[i], sims[i])
		scaled := make([]Event, len(evs))
		for k, e := range evs {
			e.Time *= c
			e.Latency *= c
			scaled[k] = e
		}
		streams[i] = scaled
	}
	return specs, MergeStreams(streams...)
}

func replayDump(t testing.TB, specs []JobSpec, events []Event, speedup float64) *Server {
	t.Helper()
	var dump bytes.Buffer
	if err := WriteDump(&dump, specs, events); err != nil {
		t.Fatal(err)
	}
	sv := NewServer(Config{Shards: 2})
	st, err := Replay(sv, bytes.NewReader(dump.Bytes()), speedup)
	if err != nil {
		t.Fatal(err)
	}
	if st.Specs != len(specs) || st.Events != len(events) {
		t.Fatalf("replay applied %d specs / %d events, dump holds %d / %d",
			st.Specs, st.Events, len(specs), len(events))
	}
	return sv
}

// TestReplayDeterminism is the pacing-independence claim: the serving clock
// is virtual, so the same dump replayed in real time (1x) and at 1000x
// yields identical final JobReports — speedup moves wall-clock pacing only,
// never outcomes.
func TestReplayDeterminism(t *testing.T) {
	// ~60ms of virtual time per job at 1x.
	specs, events := scaledWorkload(t, 2, 47, 0.0005)
	servers := map[string]*Server{}
	for name, speedup := range map[string]float64{"1x": 1, "1000x": 1000, "unthrottled": 0} {
		servers[name] = replayDump(t, specs, events, speedup)
	}
	ref := servers["1x"]
	for name, sv := range servers {
		if name == "1x" {
			continue
		}
		for _, sp := range specs {
			want, err := ref.Report(sp.JobID)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sv.Report(sp.JobID)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(coreOf(want), coreOf(got)) {
				t.Errorf("job %d: %s replay diverges from 1x:\n 1x  %+v\n %s %+v",
					sp.JobID, name, coreOf(want), name, coreOf(got))
			}
			wantV, err := ref.Query(sp.JobID, allTaskIDs(sp.NumTasks))
			if err != nil {
				t.Fatal(err)
			}
			gotV, err := sv.Query(sp.JobID, allTaskIDs(sp.NumTasks))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(wantV, gotV) {
				t.Errorf("job %d: %s replay verdicts diverge from 1x", sp.JobID, name)
			}
		}
	}
}

// TestReplayHTTPMatchesInProcess streams one dump twice — once through
// in-process Ingest calls, once through POST /ingest batches against a live
// front end — and requires identical outcomes: the HTTP wire path adds
// transport, not behavior.
func TestReplayHTTPMatchesInProcess(t *testing.T) {
	specs, events := scaledWorkload(t, 2, 53, 0.0005)
	direct := replayDump(t, specs, events, 0)

	var dump bytes.Buffer
	if err := WriteDump(&dump, specs, events); err != nil {
		t.Fatal(err)
	}
	sv := NewServer(Config{Shards: 2})
	ts := httptest.NewServer(NewHandler(sv))
	defer ts.Close()
	// Small batches force many requests; a tiny speedup exercises the
	// flush-before-sleep path as well.
	st, err := ReplayHTTP(ts.Client(), ts.URL, bytes.NewReader(dump.Bytes()), 1000, 257)
	if err != nil {
		t.Fatal(err)
	}
	if st.Specs != len(specs) || st.Events != len(events) {
		t.Fatalf("http replay applied %d/%d, want %d/%d", st.Specs, st.Events, len(specs), len(events))
	}
	for _, sp := range specs {
		want, err := direct.Report(sp.JobID)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sv.Report(sp.JobID)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(coreOf(want), coreOf(got)) {
			t.Errorf("job %d: http replay diverges from in-process replay", sp.JobID)
		}
	}
	if got, want := sv.Stats().Events, direct.Stats().Events; got != want {
		t.Errorf("http replay ingested %d events, in-process %d", got, want)
	}
}

// TestReplayErrors: corrupt dumps and protocol violations abort the replay
// with a useful error instead of wedging or panicking.
func TestReplayErrors(t *testing.T) {
	specs, events := scaledWorkload(t, 1, 59, 0.001)
	var dump bytes.Buffer
	if err := WriteDump(&dump, specs, events); err != nil {
		t.Fatal(err)
	}

	// Events for a job whose spec frame was dropped: unknown job.
	var noSpec bytes.Buffer
	if err := WriteDump(&noSpec, nil, events); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(NewServer(Config{Shards: 1}), bytes.NewReader(noSpec.Bytes()), 0); err == nil {
		t.Error("replay of a dump without specs should fail on the first event")
	}

	// A flipped payload byte: checksum failure.
	mut := append([]byte(nil), dump.Bytes()...)
	mut[len(mut)/2] ^= 0x01
	if _, err := Replay(NewServer(Config{Shards: 1}), bytes.NewReader(mut), 0); err == nil {
		t.Error("replay of a corrupted dump should fail")
	}

	// ReplayHTTP against a front end returning errors must surface them.
	sv := NewServer(Config{Shards: 1})
	ts := httptest.NewServer(NewHandler(sv))
	defer ts.Close()
	if _, err := ReplayHTTP(ts.Client(), ts.URL, bytes.NewReader(noSpec.Bytes()), 0, 64); err == nil {
		t.Error("http replay of a spec-less dump should fail")
	}
}

// TestReplayHTTPStatsOnFlushFailure: ReplayStats count only elements whose
// batch the front end acknowledged — a failed flush must not fold its queued
// elements into the totals.
func TestReplayHTTPStatsOnFlushFailure(t *testing.T) {
	specs, events := scaledWorkload(t, 1, 67, 0.001)
	var dump bytes.Buffer
	if err := WriteDump(&dump, specs, events); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "synthetic outage", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	st, err := ReplayHTTP(ts.Client(), ts.URL, bytes.NewReader(dump.Bytes()), 0, 8)
	if err == nil {
		t.Fatal("replay against a failing front end should error")
	}
	if st.Specs != 0 || st.Events != 0 {
		t.Errorf("stats count unacknowledged elements: %d specs, %d events", st.Specs, st.Events)
	}
}
