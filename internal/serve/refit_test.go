package serve

import (
	"bytes"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/nurd"
	"repro/internal/predictor"
	"repro/internal/simulator"
	"repro/internal/trace"
)

// pipelineSpec is a hand-built job whose checkpoint boundaries sit at known
// times (Horizon 100, 10 checkpoints -> boundaries at 10, 20, ...), so tests
// can place events precisely before or after a boundary crossing.
func pipelineSpec(id uint64) JobSpec {
	return JobSpec{
		JobID: id, Schema: []string{"a", "b"}, NumTasks: 8, TauStra: 50,
		StragglerQuantile: 0.9, Horizon: 100, Checkpoints: 10, WarmFrac: 0.1,
	}
}

// startTasks starts every task at t=0, heartbeats features, and finishes the
// first nFinish tasks (short latencies), leaving the rest running.
func pipelineWarmup(t *testing.T, sv *Server, id uint64, nFinish int) {
	t.Helper()
	spec := pipelineSpec(id)
	for i := 0; i < spec.NumTasks; i++ {
		if err := sv.Ingest(Event{Kind: EventTaskStart, JobID: id, TaskID: i, Time: 0}); err != nil {
			t.Fatal(err)
		}
		if err := sv.Ingest(Event{Kind: EventHeartbeat, JobID: id, TaskID: i, Time: 1,
			Features: []float64{float64(i), 1}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nFinish; i++ {
		if err := sv.Ingest(Event{Kind: EventTaskFinish, JobID: id, TaskID: i, Time: 2, Latency: 2}); err != nil {
			t.Fatal(err)
		}
	}
}

// gatedPredictor blocks inside Predict until its gate is closed, simulating
// a refit that outlasts the events streaming past it. It flags nothing.
type gatedPredictor struct {
	gate  chan struct{}
	calls int
}

func (p *gatedPredictor) Name() string { return "gated" }
func (p *gatedPredictor) Reset()       { p.calls = 0 }
func (p *gatedPredictor) Predict(cp *simulator.Checkpoint) ([]bool, error) {
	p.calls++
	<-p.gate
	return make([]bool, len(cp.RunningIDs)), nil
}

// TestIngestNotBlockedByInflightRefit is the pipeline's headline claim: a
// model refit in progress — even one that never finishes on its own — does
// not block that job's ingest or queries. (Before the pipeline, the fit ran
// inside the per-job lock and every event of that job waited ~a refit
// latency at each boundary.)
func TestIngestNotBlockedByInflightRefit(t *testing.T) {
	gate := make(chan struct{})
	cfg := Config{Shards: 1, NewPredictor: func(JobSpec) simulator.Predictor {
		return &gatedPredictor{gate: gate}
	}}
	sv := NewServer(cfg)
	if err := sv.StartJob(pipelineSpec(1), nil); err != nil {
		t.Fatal(err)
	}
	pipelineWarmup(t, sv, 1, 2)
	// Cross the first boundary: the view is captured and its fit starts on a
	// worker, where it stalls on the gate.
	if err := sv.Ingest(Event{Kind: EventHeartbeat, JobID: 1, TaskID: 2, Time: 11,
		Features: []float64{2, 1}}); err != nil {
		t.Fatal(err)
	}

	// A flood of events strictly before the next boundary, plus queries and
	// stats reads, must all complete while the fit is stalled.
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 2000; i++ {
			e := Event{Kind: EventHeartbeat, JobID: 1, TaskID: i % 8, Time: 12,
				Features: []float64{float64(i), 1}}
			if err := sv.Ingest(e); err != nil {
				done <- err
				return
			}
		}
		_, err := sv.Query(1, []int{0, 1, 2, 3})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ingest blocked while a refit was inflight")
	}

	// The stall is observable: one captured-but-unapplied refit, which lands
	// on a worker (inflight) as soon as the pool hands it off.
	var st Stats
	for deadline := time.Now().Add(5 * time.Second); ; {
		st = sv.Stats()
		if st.RefitInflight == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stalled fit never reached a worker: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	if st.RefitLag != 1 {
		t.Fatalf("stalled pipeline: lag=%d, want 1", st.RefitLag)
	}
	if st.Refits != 0 {
		t.Fatalf("refit applied while its fit was stalled (refits=%d)", st.Refits)
	}
	rep, err := sv.Report(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Generation != 0 || rep.PendingRefits != 1 {
		t.Fatalf("report generation=%d pending=%d, want 0/1", rep.Generation, rep.PendingRefits)
	}

	// Release the fit and close the stream: the drain applies everything.
	close(gate)
	if err := sv.FinishJob(1, 100); err != nil {
		t.Fatal(err)
	}
	st = sv.Stats()
	if st.RefitLag != 0 || st.RefitQueue != 0 || st.RefitInflight != 0 {
		t.Fatalf("drained pipeline not idle: %+v", st)
	}
	if st.Refits == 0 {
		t.Fatal("no refit applied after drain")
	}
	rep, err = sv.Report(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Generation != rep.Refits || rep.PendingRefits != 0 {
		t.Fatalf("drained report generation=%d refits=%d pending=%d", rep.Generation, rep.Refits, rep.PendingRefits)
	}
}

// TestRefitAppliesAtNextBoundary pins the pipeline's determinism contract:
// a fit's verdicts are applied when the next boundary crossing arrives — a
// position defined by the event stream — not when the fit happens to finish.
func TestRefitAppliesAtNextBoundary(t *testing.T) {
	sv := NewServer(Config{Shards: 1, NewPredictor: func(JobSpec) simulator.Predictor { return &flagAll{} }})
	if err := sv.StartJob(pipelineSpec(1), nil); err != nil {
		t.Fatal(err)
	}
	pipelineWarmup(t, sv, 1, 2)
	// Cross boundary 1: flagAll's verdicts (terminate everything running)
	// are computed in the background but must not land yet.
	if err := sv.Ingest(Event{Kind: EventHeartbeat, JobID: 1, TaskID: 2, Time: 11,
		Features: []float64{2, 1}}); err != nil {
		t.Fatal(err)
	}
	// Give the (cheap) fit ample time to complete in the background.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := sv.Stats()
		if st.RefitInflight == 0 && st.RefitQueue == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background fit never completed")
		}
		time.Sleep(time.Millisecond)
	}
	if rep, _ := sv.Report(1); rep.Terminated != 0 || rep.Generation != 0 {
		t.Fatalf("verdicts applied before the next boundary: terminated=%d gen=%d",
			rep.Terminated, rep.Generation)
	}
	if st := sv.Stats(); st.RefitLag != 1 {
		t.Fatalf("computed-but-unapplied refit not counted in lag: %d", st.RefitLag)
	}
	// Cross boundary 2: the stored verdicts land first, so the 6 tasks that
	// were running at boundary 1 are terminated with FlaggedAt = 1.
	if err := sv.Ingest(Event{Kind: EventHeartbeat, JobID: 1, TaskID: 3, Time: 21,
		Features: []float64{3, 1}}); err != nil {
		t.Fatal(err)
	}
	rep, err := sv.Report(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Terminated != 6 || rep.Generation != 1 {
		t.Fatalf("after next boundary: terminated=%d gen=%d, want 6/1", rep.Terminated, rep.Generation)
	}
	for id, k := range rep.PredictedAt {
		if k != 1 {
			t.Fatalf("task %d flagged at %d, want boundary 1", id, k)
		}
	}
}

// offlineWarmNURD builds the warm-mode predictor serve's default factory
// would, for offline reference replays.
func offlineWarmNURD(spec JobSpec) *predictor.NURDPredictor {
	cfg := nurd.DefaultWarmConfig()
	cfg.Seed = spec.Seed
	return predictor.NewNURDWith("NURD-warm", cfg, predictor.ConfirmFor(spec.Schema))
}

// TestWarmServingMatchesOfflineWarm is scratch's equivalence claim carried
// over to warm mode: streaming a job through a warm-mode server terminates
// exactly the tasks, at exactly the checkpoints, that an offline replay with
// the same warm-refit predictor does. (Warm mode changes the model bits, so
// it is not compared against the scratch offline path — that comparison is
// the epsilon gate below.)
func TestWarmServingMatchesOfflineWarm(t *testing.T) {
	const n = 3
	jobs, sims := smallJobs(t, n, 53)
	sv := NewServer(Config{Shards: 2, RefitMode: RefitWarm})
	for i := range jobs {
		s, _ := nurdSeed(t, 53, i)
		spec := SpecFor(sims[i], s)
		if err := sv.StartJob(spec, nil); err != nil {
			t.Fatal(err)
		}
		if err := sv.IngestBatch(JobEvents(jobs[i], sims[i])); err != nil {
			t.Fatal(err)
		}
		spec.RefitMode = RefitWarm
		off, err := simulator.Evaluate(sims[i], offlineWarmNURD(spec))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sv.Report(spec.JobID)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rep.PredictedAt, off.PredictedAt) {
			t.Errorf("job %d: warm serving terminated %v, offline warm %v", i, rep.PredictedAt, off.PredictedAt)
		}
		if served, offline := rep.Confusion(sims[i].Truth()).F1(), off.Final.F1(); served != offline {
			t.Errorf("job %d: warm served F1 %v != offline warm F1 %v", i, served, offline)
		}
		if rep.WarmFits == 0 {
			t.Errorf("job %d: no warm fits recorded", i)
		}
	}
}

// TestWarmF1WithinEpsilonOfScratch is warm mode's accuracy gate: across a
// batch of seed-trace jobs, macro-averaged warm F1 must sit within a small
// epsilon of the scratch (Table 3) path. Warm refits see the same data
// through fewer, incrementally-grown trees, so per-job verdicts may differ —
// the gate bounds the aggregate accuracy cost of the ~3x refit speedup.
func TestWarmF1WithinEpsilonOfScratch(t *testing.T) {
	const n, seed, epsilon = 6, 42, 0.05
	jobs, sims := testJobs(t, trace.DefaultGoogleConfig(seed), n)
	var warmSum, scratchSum float64
	for i := range jobs {
		s, fac := nurdSeed(t, seed, i)
		off, err := simulator.Evaluate(sims[i], fac.New(sims[i], s))
		if err != nil {
			t.Fatal(err)
		}
		spec := SpecFor(sims[i], s)
		spec.RefitMode = RefitWarm
		warm, err := simulator.Evaluate(sims[i], offlineWarmNURD(spec))
		if err != nil {
			t.Fatal(err)
		}
		scratchSum += off.Final.F1()
		warmSum += warm.Final.F1()
	}
	warmAvg, scratchAvg := warmSum/n, scratchSum/n
	if d := math.Abs(warmAvg - scratchAvg); d > epsilon {
		t.Fatalf("warm macro F1 %.4f vs scratch %.4f: |d|=%.4f exceeds epsilon %v",
			warmAvg, scratchAvg, d, epsilon)
	}
	t.Logf("warm macro F1 %.4f, scratch %.4f", warmAvg, scratchAvg)
}

// TestSnapshotRestoreWithPendingRefit cuts a stream immediately after a
// boundary crossing — when a captured view's fit is pending — snapshots,
// restores, and checks the revived server carries the pending refit (same
// generation, PendingRefits 1) and converges to the uninterrupted outcome.
func TestSnapshotRestoreWithPendingRefit(t *testing.T) {
	jobs, sims := smallJobs(t, 1, 67)
	job, sim := jobs[0], sims[0]
	s, _ := nurdSeed(t, 67, 0)
	spec := SpecFor(sim, s)
	events := JobEvents(job, sim)

	// Find a cut that lands with a refit pending: ingest event by event and
	// stop at the first point where the report shows a captured-but-
	// unapplied refit.
	build := func() (*Server, int) {
		sv := NewServer(Config{Shards: 1})
		if err := sv.StartJob(spec, nil); err != nil {
			t.Fatal(err)
		}
		for i, e := range events {
			if err := sv.Ingest(e); err != nil {
				t.Fatal(err)
			}
			rep, err := sv.Report(spec.JobID)
			if err != nil {
				t.Fatal(err)
			}
			if rep.PendingRefits == 1 && rep.Generation >= 1 {
				return sv, i + 1
			}
		}
		t.Skip("stream never left a refit pending (degenerate job)")
		return nil, 0
	}
	svB, cut := build()
	var snap bytes.Buffer
	if err := svB.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	repB, err := svB.Report(spec.JobID)
	if err != nil {
		t.Fatal(err)
	}

	svC, err := RestoreServer(bytes.NewReader(snap.Bytes()), Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	repC, err := svC.Report(spec.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if repC.Generation != repB.Generation || repC.PendingRefits != 1 {
		t.Fatalf("restored generation=%d pending=%d, want %d/1",
			repC.Generation, repC.PendingRefits, repB.Generation)
	}

	// Reference: an uninterrupted server over the full stream.
	svA := NewServer(Config{Shards: 1})
	if err := svA.StartJob(spec, nil); err != nil {
		t.Fatal(err)
	}
	if err := svA.IngestBatch(events); err != nil {
		t.Fatal(err)
	}
	if err := svC.IngestBatch(events[cut:]); err != nil {
		t.Fatal(err)
	}
	repA, _ := svA.Report(spec.JobID)
	repC, _ = svC.Report(spec.JobID)
	if !reflect.DeepEqual(coreOf(repA), coreOf(repC)) {
		t.Errorf("restored-with-pending outcome diverges:\n uninterrupted %+v\n restored %+v",
			coreOf(repA), coreOf(repC))
	}
	vsA, _ := svA.Query(spec.JobID, allTaskIDs(spec.NumTasks))
	vsC, err := svC.Query(spec.JobID, allTaskIDs(spec.NumTasks))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vsA, vsC) {
		t.Error("final verdicts diverge after restoring with a pending refit")
	}
}

// TestConcurrentRefitsAcrossJobs drives many jobs through a small pool under
// the race detector: fits from different jobs share workers while each job's
// outcome stays identical to its solo offline replay.
func TestConcurrentRefitsAcrossJobs(t *testing.T) {
	const n = 8
	jobs, sims := smallJobs(t, n, 59)
	sv := NewServer(Config{Shards: 2, RefitWorkers: 1})
	var wg sync.WaitGroup
	for i := range jobs {
		s, _ := nurdSeed(t, 59, i)
		if err := sv.StartJob(SpecFor(sims[i], s), nil); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := sv.IngestBatch(JobEvents(jobs[i], sims[i])); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	for i := range jobs {
		s, fac := nurdSeed(t, 59, i)
		off, err := simulator.Evaluate(sims[i], fac.New(sims[i], s))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sv.Report(jobs[i].ID)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rep.PredictedAt, off.PredictedAt) {
			t.Errorf("job %d diverged from offline under a shared 1-worker pool", i)
		}
	}
	if st := sv.Stats(); st.RefitLag != 0 || st.RefitQueue != 0 || st.RefitInflight != 0 {
		t.Errorf("pipeline not drained: %+v", st)
	}
}

// panicking panics inside Predict (a hostile or buggy user predictor).
type panicking struct{}

func (p *panicking) Name() string { return "panicking" }
func (p *panicking) Reset()       {}
func (p *panicking) Predict(cp *simulator.Checkpoint) ([]bool, error) {
	panic("synthetic predictor bug")
}

// TestPredictorPanicContained: a predictor that panics on a pool worker must
// not kill the process — the panic converts into the existing fail-the-job
// path, and other jobs keep serving.
func TestPredictorPanicContained(t *testing.T) {
	sv := NewServer(Config{Shards: 1, NewPredictor: func(sp JobSpec) simulator.Predictor {
		if sp.JobID == 1 {
			return &panicking{}
		}
		return &flagAll{}
	}})
	for _, id := range []uint64{1, 2} {
		if err := sv.StartJob(pipelineSpec(id), nil); err != nil {
			t.Fatal(err)
		}
		pipelineWarmup(t, sv, id, 2)
	}
	for _, id := range []uint64{1, 2} {
		for _, tm := range []float64{11, 21, 31} {
			if err := sv.Ingest(Event{Kind: EventHeartbeat, JobID: id, TaskID: 3, Time: tm,
				Features: []float64{3, 1}}); err != nil {
				t.Fatal(err)
			}
		}
		if err := sv.FinishJob(id, 100); err != nil {
			t.Fatal(err)
		}
	}
	rep1, err := sv.Report(1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep1.Done || !rep1.Failed {
		t.Errorf("panicking predictor should close its job as failed (done=%v failed=%v)", rep1.Done, rep1.Failed)
	}
	rep2, err := sv.Report(2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Done || rep2.Failed || rep2.Terminated == 0 {
		t.Errorf("shard-mate of a panicking job misbehaved: %+v", rep2)
	}
}
