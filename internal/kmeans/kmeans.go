// Package kmeans implements k-means++ clustering, the substrate for the
// CBLOF outlier detector and the locality partitioning in LSCP.
package kmeans

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/vecmath"
)

// KMeansResult holds a fitted clustering.
type KMeansResult struct {
	Centers [][]float64
	// Assign maps each input row to its cluster index.
	Assign []int
	// Sizes holds per-cluster member counts.
	Sizes []int
	// Inertia is the total within-cluster squared distance.
	Inertia float64
}

// KMeans clusters X into k groups using k-means++ seeding and Lloyd
// iterations. It returns an error if X is empty or k < 1; if k exceeds the
// number of distinct points the surplus clusters come back empty-but-valid
// (size 0).
func KMeans(X [][]float64, k int, maxIter int, rng *stats.RNG) (*KMeansResult, error) {
	n := len(X)
	if n == 0 {
		return nil, fmt.Errorf("cluster: empty input")
	}
	if k < 1 {
		return nil, fmt.Errorf("cluster: k must be >= 1, got %d", k)
	}
	if k > n {
		k = n
	}
	if maxIter <= 0 {
		maxIter = 50
	}
	d := len(X[0])

	// k-means++ seeding.
	centers := make([][]float64, 0, k)
	first := rng.Intn(n)
	centers = append(centers, append([]float64(nil), X[first]...))
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = vecmath.SqDist(X[i], centers[0])
	}
	for len(centers) < k {
		total := 0.0
		for _, dd := range minDist {
			total += dd
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(n)
		} else {
			r := rng.Float64() * total
			acc := 0.0
			pick = n - 1
			for i, dd := range minDist {
				acc += dd
				if acc >= r {
					pick = i
					break
				}
			}
		}
		c := append([]float64(nil), X[pick]...)
		centers = append(centers, c)
		for i := range minDist {
			if dd := vecmath.SqDist(X[i], c); dd < minDist[i] {
				minDist[i] = dd
			}
		}
	}

	assign := make([]int, n)
	sizes := make([]int, k)
	sums := make([][]float64, k)
	for c := range sums {
		sums[c] = make([]float64, d)
	}
	inertia := 0.0
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		inertia = 0
		for i, x := range X {
			best, bestD := 0, vecmath.SqDist(x, centers[0])
			for c := 1; c < k; c++ {
				if dd := vecmath.SqDist(x, centers[c]); dd < bestD {
					best, bestD = c, dd
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
			inertia += bestD
		}
		if !changed && iter > 0 {
			break
		}
		for c := 0; c < k; c++ {
			sizes[c] = 0
			for j := range sums[c] {
				sums[c][j] = 0
			}
		}
		for i, x := range X {
			c := assign[i]
			sizes[c]++
			for j, v := range x {
				sums[c][j] += v
			}
		}
		for c := 0; c < k; c++ {
			if sizes[c] == 0 {
				continue // keep previous center for empty clusters
			}
			inv := 1 / float64(sizes[c])
			for j := range centers[c] {
				centers[c][j] = sums[c][j] * inv
			}
		}
	}
	// Final size recount (assignments may have changed on last pass).
	for c := range sizes {
		sizes[c] = 0
	}
	for _, c := range assign {
		sizes[c]++
	}
	return &KMeansResult{Centers: centers, Assign: assign, Sizes: sizes, Inertia: inertia}, nil
}
