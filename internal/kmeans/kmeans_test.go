package kmeans

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/vecmath"
)

// threeBlobs returns well-separated clusters around (0,0), (10,0), (0,10).
func threeBlobs(perCluster int, seed uint64) [][]float64 {
	rng := stats.NewRNG(seed)
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	var X [][]float64
	for _, c := range centers {
		for i := 0; i < perCluster; i++ {
			X = append(X, []float64{c[0] + rng.Normal(0, 0.5), c[1] + rng.Normal(0, 0.5)})
		}
	}
	return X
}

func TestKMeansRecoversBlobs(t *testing.T) {
	X := threeBlobs(50, 1)
	res, err := KMeans(X, 3, 50, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 3 {
		t.Fatalf("%d centers", len(res.Centers))
	}
	// Each true blob center must be close to some found center.
	for _, want := range [][]float64{{0, 0}, {10, 0}, {0, 10}} {
		best := 1e18
		for _, c := range res.Centers {
			if d := vecmath.Dist(want, c); d < best {
				best = d
			}
		}
		if best > 1 {
			t.Fatalf("no center near %v (closest %v away)", want, best)
		}
	}
	// Assignments within a blob agree.
	for b := 0; b < 3; b++ {
		first := res.Assign[b*50]
		for i := 1; i < 50; i++ {
			if res.Assign[b*50+i] != first {
				t.Fatalf("blob %d split across clusters", b)
			}
		}
	}
}

func TestKMeansSizesSum(t *testing.T) {
	X := threeBlobs(30, 3)
	res, err := KMeans(X, 3, 50, stats.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != len(X) {
		t.Fatalf("sizes sum %d, want %d", total, len(X))
	}
}

func TestKMeansKGreaterThanN(t *testing.T) {
	X := [][]float64{{1}, {2}}
	res, err := KMeans(X, 10, 10, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 2 {
		t.Fatalf("k should clamp to n: %d centers", len(res.Centers))
	}
}

func TestKMeansK1(t *testing.T) {
	X := threeBlobs(10, 6)
	res, err := KMeans(X, 1, 20, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	c := vecmath.Centroid(X)
	if vecmath.Dist(res.Centers[0], c) > 1e-9 {
		t.Fatalf("k=1 center %v should equal centroid %v", res.Centers[0], c)
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, err := KMeans(nil, 2, 10, stats.NewRNG(1)); err == nil {
		t.Fatal("expected error on empty input")
	}
	if _, err := KMeans([][]float64{{1}}, 0, 10, stats.NewRNG(1)); err == nil {
		t.Fatal("expected error on k=0")
	}
}

func TestKMeansInertiaImprovesOverRandom(t *testing.T) {
	X := threeBlobs(40, 8)
	res, err := KMeans(X, 3, 50, stats.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	// Inertia with the true structure is tiny compared to k=1.
	res1, err := KMeans(X, 1, 50, stats.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia >= res1.Inertia/10 {
		t.Fatalf("k=3 inertia %v should be far below k=1 inertia %v", res.Inertia, res1.Inertia)
	}
}
