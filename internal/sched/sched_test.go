package sched

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestJCTUnlimited(t *testing.T) {
	lat := []float64{3, 7, 2}
	if got := JCT(lat, 0); got != 7 {
		t.Fatalf("unlimited JCT %v, want 7", got)
	}
	if got := JCT(lat, 10); got != 7 {
		t.Fatalf("m>n JCT %v, want 7", got)
	}
}

func TestJCTSingleMachine(t *testing.T) {
	lat := []float64{3, 7, 2}
	if got := JCT(lat, 1); got != 12 {
		t.Fatalf("1-machine JCT %v, want 12", got)
	}
}

func TestJCTTwoMachines(t *testing.T) {
	// FIFO: m1 gets 4 (ends 4), m2 gets 2 (ends 2), m2 takes 6 (ends 8).
	lat := []float64{4, 2, 6}
	if got := JCT(lat, 2); got != 8 {
		t.Fatalf("2-machine JCT %v, want 8", got)
	}
}

func TestJCTEmpty(t *testing.T) {
	if got := JCT(nil, 3); got != 0 {
		t.Fatalf("empty JCT %v", got)
	}
}

func TestJCTMonotoneInMachines(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 5 + rng.Intn(40)
		lat := make([]float64, n)
		for i := range lat {
			lat[i] = rng.Exponential(0.5) + 0.1
		}
		prev := math.Inf(1)
		for _, m := range []int{1, 2, 4, 8, 0} {
			j := JCT(lat, m)
			if j > prev+1e-9 {
				return false
			}
			prev = j
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMitigatedPerfectPlanReducesJCT(t *testing.T) {
	// One extreme straggler flagged very early; the relaunch resamples from
	// short latencies, so the makespan must collapse.
	lat := []float64{10, 12, 11, 100}
	plan := Plan{3: 5} // terminate the straggler after 5 time units
	pool := []float64{10, 11, 12}
	got, err := Mitigated(lat, plan, pool, Config{Machines: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Straggler restarts at t=5 with latency <= 12: completes by 17.
	if got > 17+1e-9 {
		t.Fatalf("mitigated JCT %v, want <= 17", got)
	}
	if base := JCT(lat, 0); got >= base {
		t.Fatalf("mitigation did not help: %v >= %v", got, base)
	}
}

func TestMitigatedEmptyPlanEqualsBaseline(t *testing.T) {
	lat := []float64{5, 9, 3, 14}
	for _, m := range []int{0, 1, 2} {
		got, err := Mitigated(lat, nil, []float64{1}, Config{Machines: m, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if want := JCT(lat, m); math.Abs(got-want) > 1e-9 {
			t.Fatalf("m=%d: mitigated-without-plan %v != baseline %v", m, got, want)
		}
	}
}

func TestMitigatedFalsePositiveCanHurt(t *testing.T) {
	// Flagging the longest task late and relaunching with an equally long
	// copy extends its completion: elapsed + new >= original.
	lat := []float64{10, 20}
	plan := Plan{1: 19} // terminated just before finishing
	pool := []float64{20}
	got, err := Mitigated(lat, plan, pool, Config{Machines: 0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got <= JCT(lat, 0) {
		t.Fatalf("late FP relaunch should extend JCT: %v <= %v", got, JCT(lat, 0))
	}
}

func TestMitigatedPlanBeyondLatencyIgnored(t *testing.T) {
	// A flag at elapsed >= latency never fires (task finished first).
	lat := []float64{5, 8}
	plan := Plan{0: 9}
	got, err := Mitigated(lat, plan, []float64{1}, Config{Machines: 0, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != 8 {
		t.Fatalf("JCT %v, want 8", got)
	}
}

func TestMitigatedEmptyPoolErrors(t *testing.T) {
	if _, err := Mitigated([]float64{1}, Plan{0: 0.5}, nil, Config{}); err == nil {
		t.Fatal("expected empty-pool error")
	}
}

func TestMitigatedLimitedMachinesQueueing(t *testing.T) {
	// 2 machines, 3 tasks; flagging nothing: JCT matches baseline even
	// through the event-driven path.
	lat := []float64{4, 2, 6}
	got, err := Mitigated(lat, nil, []float64{1}, Config{Machines: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got != 8 {
		t.Fatalf("limited-machine JCT %v, want 8", got)
	}
}

func TestReductionPct(t *testing.T) {
	if got := ReductionPct(100, 75); got != 25 {
		t.Fatalf("reduction %v, want 25", got)
	}
	if got := ReductionPct(0, 10); got != 0 {
		t.Fatalf("zero-baseline reduction %v", got)
	}
	if got := ReductionPct(100, 120); got != -20 {
		t.Fatalf("negative reduction %v, want -20", got)
	}
}

func TestSubThresholdPool(t *testing.T) {
	lat := []float64{1, 5, 9, 20}
	pool := SubThresholdPool(lat, 9)
	if len(pool) != 2 || pool[0] != 1 || pool[1] != 5 {
		t.Fatalf("pool %v", pool)
	}
	// Degenerate: everything above threshold falls back to the full set.
	pool = SubThresholdPool(lat, 0.5)
	if len(pool) != 4 {
		t.Fatalf("fallback pool %v", pool)
	}
}

func TestMitigatedDeterministic(t *testing.T) {
	rng := stats.NewRNG(6)
	lat := make([]float64, 50)
	for i := range lat {
		lat[i] = rng.Exponential(0.2)
	}
	plan := Plan{3: 1, 17: 2, 42: 0.5}
	pool := SubThresholdPool(lat, stats.Quantile(lat, 0.9))
	a, err := Mitigated(lat, plan, pool, Config{Machines: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mitigated(lat, plan, pool, Config{Machines: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed, different JCT: %v vs %v", a, b)
	}
}

func TestMitigatedEarlyFlagBeatsLateFlagProperty(t *testing.T) {
	// For a true straggler, flagging earlier can never hurt (same resample
	// stream): completion = flagTime + newLat.
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		lat := []float64{10, 11, 12, 100}
		e1 := rng.Uniform(1, 40)
		e2 := e1 + rng.Uniform(1, 40)
		pool := []float64{10}
		early, err := Mitigated(lat, Plan{3: e1}, pool, Config{Seed: 1})
		if err != nil {
			return false
		}
		late, err := Mitigated(lat, Plan{3: e2}, pool, Config{Seed: 1})
		if err != nil {
			return false
		}
		return early <= late+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
