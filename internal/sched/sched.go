// Package sched implements the paper's straggler-mitigation schedulers
// (§5): Algorithm 2 (more machines than tasks: terminate a predicted
// straggler and relaunch it immediately) and Algorithm 3 (fewer machines
// than tasks: a relaunch waits until a machine is free). Both are realized
// by one event-driven list scheduler; the relaunched copy's completion time
// is resampled from the job's observed execution times (§7.3).
package sched

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Plan describes the mitigation decisions for one job: for each flagged
// task, the elapsed runtime at which the predictor flagged it. Tasks absent
// from the map run to natural completion.
type Plan map[int]float64

// Config controls the mitigation simulation.
type Config struct {
	// Machines bounds parallelism; 0 means unlimited (Algorithm 2).
	Machines int
	// Seed drives the relaunch resampling.
	Seed uint64
}

// JCT returns the job completion time (makespan) of running the given task
// latencies on m machines with FIFO list scheduling and no mitigation.
// m = 0 means unlimited machines (every task starts at time zero).
func JCT(latencies []float64, m int) float64 {
	if len(latencies) == 0 {
		return 0
	}
	if m <= 0 || m >= len(latencies) {
		max := latencies[0]
		for _, l := range latencies[1:] {
			if l > max {
				max = l
			}
		}
		return max
	}
	// FIFO onto the earliest-free machine.
	free := make(machineHeap, m)
	heap.Init(&free)
	makespan := 0.0
	for _, l := range latencies {
		t := heap.Pop(&free).(float64)
		end := t + l
		heap.Push(&free, end)
		if end > makespan {
			makespan = end
		}
	}
	return makespan
}

// Mitigated simulates the job with the mitigation plan applied and returns
// the resulting completion time. A flagged task runs for its flagged
// elapsed time, is terminated, and a fresh copy (with latency resampled
// uniformly from the job's sub-threshold execution times) is enqueued; the
// copy starts as soon as a machine is free (immediately when machines are
// unlimited). resamplePool supplies the candidate relaunch latencies
// (typically the job's non-straggler latencies); it must be non-empty.
func Mitigated(latencies []float64, plan Plan, pool []float64, cfg Config) (float64, error) {
	n := len(latencies)
	if n == 0 {
		return 0, nil
	}
	if len(pool) == 0 {
		return 0, fmt.Errorf("sched: empty resample pool")
	}
	rng := stats.NewRNG(cfg.Seed ^ 0x5c4ed)
	m := cfg.Machines
	if m <= 0 {
		m = n + len(plan) // effectively unlimited
	}

	// Work items: original tasks ready at time 0; relaunched copies become
	// ready at their termination times.
	pending := &workHeap{}
	heap.Init(pending)
	seq := 0
	for i := 0; i < n; i++ {
		l := latencies[i]
		if e, ok := plan[i]; ok && e < l {
			// Runs e, gets terminated; the copy is pushed when termination
			// is simulated below (we know its ready time only after the
			// start time is assigned, so carry e in run with final=false).
			heap.Push(pending, workItem{ready: 0, run: e, final: false, seq: seq})
		} else {
			heap.Push(pending, workItem{ready: 0, run: l, final: true, seq: seq})
		}
		seq++
	}

	free := make(machineHeap, 0, m)
	for i := 0; i < m; i++ {
		heap.Push(&free, 0.0)
	}
	makespan := 0.0
	for pending.Len() > 0 {
		it := heap.Pop(pending).(workItem)
		mt := heap.Pop(&free).(float64)
		start := it.ready
		if mt > start {
			start = mt
		}
		end := start + it.run
		heap.Push(&free, end)
		if it.final {
			if end > makespan {
				makespan = end
			}
			continue
		}
		// Termination: enqueue the relaunched copy, ready at the
		// termination instant.
		newLat := pool[rng.Intn(len(pool))]
		heap.Push(pending, workItem{ready: end, run: newLat, final: true, seq: seq})
		seq++
	}
	return makespan, nil
}

// ReductionPct returns the percentage reduction of mitigated vs baseline.
func ReductionPct(baseline, mitigated float64) float64 {
	if baseline <= 0 {
		return 0
	}
	return 100 * (baseline - mitigated) / baseline
}

// SubThresholdPool returns the latencies strictly below tau, the relaunch
// resampling pool ("existing execution times" of ordinary tasks). If all
// latencies are above tau it falls back to the full set.
func SubThresholdPool(latencies []float64, tau float64) []float64 {
	var pool []float64
	for _, l := range latencies {
		if l < tau {
			pool = append(pool, l)
		}
	}
	if len(pool) == 0 {
		pool = append(pool, latencies...)
	}
	sort.Float64s(pool)
	return pool
}

// machineHeap is a min-heap of machine free times.
type machineHeap []float64

func (h machineHeap) Len() int            { return len(h) }
func (h machineHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h machineHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *machineHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *machineHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// workItem is one machine occupancy: an original task run (possibly cut
// short by termination) or a relaunched copy.
type workItem struct {
	ready float64 // earliest start time
	run   float64 // machine occupancy duration
	final bool    // completion of this item completes the task
	seq   int     // submission order, the FIFO tiebreak for equal ready times
}

// workHeap orders work items by (ready time, submission order) so the
// discipline matches the FIFO baseline in JCT.
type workHeap []workItem

func (h workHeap) Len() int { return len(h) }
func (h workHeap) Less(i, j int) bool {
	if h[i].ready != h[j].ready {
		return h[i].ready < h[j].ready
	}
	return h[i].seq < h[j].seq
}
func (h workHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *workHeap) Push(x interface{}) { *h = append(*h, x.(workItem)) }
func (h *workHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}
