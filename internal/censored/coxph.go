package censored

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/vecmath"
)

// CoxConfig controls CoxPH partial-likelihood maximization.
type CoxConfig struct {
	Iters int
	LR    float64
	L2    float64
}

// DefaultCoxConfig returns optimizer settings adequate for trace-scale data.
func DefaultCoxConfig() CoxConfig {
	return CoxConfig{Iters: 200, LR: 0.2, L2: 1e-3}
}

// CoxPH is a fitted proportional-hazards model: hazard(t|x) =
// h0(t)·exp(w·x), with the Breslow estimator for the cumulative baseline
// hazard H0.
type CoxPH struct {
	W    []float64
	mean []float64
	std  []float64
	// baseline cumulative hazard as a step function over event times.
	times []float64
	cumH0 []float64
}

// FitCoxPH fits the model on (duration, event) observations: event[i] is
// true when the task finished at duration[i] (an observed event) and false
// when it is still running (right-censored at duration[i]). Gradient ascent
// on the Breslow partial likelihood.
func FitCoxPH(X [][]float64, duration []float64, event []bool, cfg CoxConfig) (*CoxPH, error) {
	n := len(X)
	if n == 0 {
		return nil, fmt.Errorf("censored: empty training set")
	}
	if len(duration) != n || len(event) != n {
		return nil, fmt.Errorf("censored: shape mismatch (%d rows, %d durations, %d events)",
			n, len(duration), len(event))
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 200
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.2
	}
	nevents := 0
	for _, e := range event {
		if e {
			nevents++
		}
	}
	if nevents == 0 {
		return nil, fmt.Errorf("censored: coxph requires at least one event")
	}
	mean, std := vecmath.ColumnStats(X)
	Z := vecmath.Standardize(X, mean, std)
	d := len(Z[0])

	// Sort rows by duration ascending; risk set at an event time is the
	// suffix of rows with duration >= that time.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return duration[order[a]] < duration[order[b]] })

	w := make([]float64, d)
	gw := make([]float64, d)
	riskSum := make([]float64, d)
	lr := cfg.LR
	prevLL := math.Inf(-1)
	for it := 0; it < cfg.Iters; it++ {
		// Suffix sums over the sorted order: S0 = sum exp(w·z),
		// S1_j = sum z_j exp(w·z).
		for j := range gw {
			gw[j] = 0
		}
		ll := 0.0
		S0 := 0.0
		for j := range riskSum {
			riskSum[j] = 0
		}
		// Walk from the largest duration down, maintaining the risk set.
		for k := n - 1; k >= 0; k-- {
			i := order[k]
			e := math.Exp(clamp(vecmath.Dot(w, Z[i]), -30, 30))
			S0 += e
			for j := 0; j < d; j++ {
				riskSum[j] += e * Z[i][j]
			}
			if event[i] {
				ll += vecmath.Dot(w, Z[i]) - math.Log(S0)
				for j := 0; j < d; j++ {
					gw[j] += Z[i][j] - riskSum[j]/S0
				}
			}
		}
		for j := 0; j < d; j++ {
			ll -= 0.5 * cfg.L2 * w[j] * w[j]
			gw[j] -= cfg.L2 * w[j]
		}
		if ll < prevLL {
			lr *= 0.5
			if lr < 1e-7 {
				break
			}
		}
		prevLL = ll
		inv := 1 / float64(nevents)
		for j := 0; j < d; j++ {
			w[j] += lr * gw[j] * inv
		}
	}

	m := &CoxPH{W: w, mean: mean, std: std}
	m.fitBaseline(Z, duration, event, order)
	return m, nil
}

// fitBaseline computes the Breslow cumulative baseline hazard.
func (m *CoxPH) fitBaseline(Z [][]float64, duration []float64, event []bool, order []int) {
	n := len(Z)
	// Risk denominator at each position (suffix sums of exp(w·z)).
	suffix := make([]float64, n+1)
	for k := n - 1; k >= 0; k-- {
		i := order[k]
		suffix[k] = suffix[k+1] + math.Exp(clamp(vecmath.Dot(m.W, Z[i]), -30, 30))
	}
	cum := 0.0
	for k := 0; k < n; k++ {
		i := order[k]
		if !event[i] {
			continue
		}
		if suffix[k] > 0 {
			cum += 1 / suffix[k]
		}
		m.times = append(m.times, duration[i])
		m.cumH0 = append(m.cumH0, cum)
	}
}

// RiskScore returns exp(w·x), the relative hazard for raw features x.
func (m *CoxPH) RiskScore(x []float64) float64 {
	z := 0.0
	for j := range m.W {
		z += m.W[j] * (x[j] - m.mean[j]) / m.std[j]
	}
	return math.Exp(clamp(z, -30, 30))
}

// Survival returns S(t|x) = exp(-H0(t)·exp(w·x)).
func (m *CoxPH) Survival(t float64, x []float64) float64 {
	h0 := m.cumHazardAt(t)
	return math.Exp(-h0 * m.RiskScore(x))
}

func (m *CoxPH) cumHazardAt(t float64) float64 {
	// Largest event time <= t (step function).
	lo, hi := 0, len(m.times)
	for lo < hi {
		mid := (lo + hi) / 2
		if m.times[mid] <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return m.cumH0[lo-1]
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
