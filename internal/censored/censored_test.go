package censored

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestTobitRecoversSlopeUnderCensoring(t *testing.T) {
	// y* = 2 + 3x + eps; right-censor at 6. A plain fit on censored data
	// would flatten the slope; Tobit should keep it near 3.
	rng := stats.NewRNG(1)
	n := 800
	X := make([][]float64, n)
	y := make([]float64, n)
	cens := make([]bool, n)
	const cpoint = 6.0
	for i := 0; i < n; i++ {
		x := rng.Float64() * 3
		X[i] = []float64{x}
		v := 2 + 3*x + rng.Normal(0, 0.5)
		if v > cpoint {
			y[i] = cpoint
			cens[i] = true
		} else {
			y[i] = v
		}
	}
	m, err := FitTobit(X, y, cens, DefaultTobitConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Slope check via two predictions.
	slope := (m.Predict([]float64{2}) - m.Predict([]float64{1}))
	if math.Abs(slope-3) > 0.5 {
		t.Fatalf("tobit slope %v, want ~3", slope)
	}
	// The model must predict beyond the censoring point in the censored
	// region.
	if p := m.Predict([]float64{2.8}); p <= cpoint {
		t.Fatalf("prediction %v does not extrapolate past censor point %v", p, cpoint)
	}
}

func TestTobitAllUncensoredMatchesRegression(t *testing.T) {
	rng := stats.NewRNG(2)
	n := 400
	X := make([][]float64, n)
	y := make([]float64, n)
	cens := make([]bool, n)
	for i := 0; i < n; i++ {
		x := rng.Normal(0, 1)
		X[i] = []float64{x}
		y[i] = 5 - 2*x + rng.Normal(0, 0.2)
	}
	m, err := FitTobit(X, y, cens, DefaultTobitConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p := m.Predict([]float64{0}); math.Abs(p-5) > 0.2 {
		t.Fatalf("intercept %v, want ~5", p)
	}
	slope := m.Predict([]float64{1}) - m.Predict([]float64{0})
	if math.Abs(slope+2) > 0.2 {
		t.Fatalf("slope %v, want ~-2", slope)
	}
}

func TestTobitErrors(t *testing.T) {
	if _, err := FitTobit(nil, nil, nil, DefaultTobitConfig()); err == nil {
		t.Fatal("expected error on empty input")
	}
	if _, err := FitTobit([][]float64{{1}}, []float64{1}, []bool{true}, DefaultTobitConfig()); err == nil {
		t.Fatal("expected error when everything is censored")
	}
	if _, err := FitTobit([][]float64{{1}}, []float64{1, 2}, []bool{false}, DefaultTobitConfig()); err == nil {
		t.Fatal("expected shape error")
	}
}

// coxData builds survival data where feature x multiplies the hazard:
// higher x means earlier events.
func coxData(n int, seed uint64) (X [][]float64, dur []float64, ev []bool) {
	rng := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		x := rng.Float64()*2 - 1
		hazard := math.Exp(1.5 * x)
		d := rng.Exponential(hazard)
		censorAt := rng.Exponential(0.3)
		X = append(X, []float64{x})
		if d <= censorAt {
			dur = append(dur, d)
			ev = append(ev, true)
		} else {
			dur = append(dur, censorAt)
			ev = append(ev, false)
		}
	}
	return
}

func TestCoxPHRecoversRiskDirection(t *testing.T) {
	X, dur, ev := coxData(800, 3)
	m, err := FitCoxPH(X, dur, ev, DefaultCoxConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Higher x => higher hazard => higher risk score.
	if m.RiskScore([]float64{1}) <= m.RiskScore([]float64{-1}) {
		t.Fatal("risk score direction wrong")
	}
	// And roughly exponential in x with rate ~1.5 (in standardized units
	// the sign is what matters; check monotonic ordering).
	r1 := m.RiskScore([]float64{-0.5})
	r2 := m.RiskScore([]float64{0})
	r3 := m.RiskScore([]float64{0.5})
	if !(r1 < r2 && r2 < r3) {
		t.Fatalf("risk not monotone: %v %v %v", r1, r2, r3)
	}
}

func TestCoxPHSurvivalProperties(t *testing.T) {
	X, dur, ev := coxData(500, 4)
	m, err := FitCoxPH(X, dur, ev, DefaultCoxConfig())
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3}
	prev := 1.0
	for _, tt := range []float64{0, 0.5, 1, 2, 4, 8} {
		s := m.Survival(tt, x)
		if s < 0 || s > 1 {
			t.Fatalf("survival %v out of [0,1]", s)
		}
		if s > prev+1e-12 {
			t.Fatalf("survival increased over time at t=%v", tt)
		}
		prev = s
	}
	// High-risk tasks must have lower survival at a fixed horizon.
	if m.Survival(1, []float64{1}) >= m.Survival(1, []float64{-1}) {
		t.Fatal("high-hazard point should have lower survival")
	}
}

func TestCoxPHErrors(t *testing.T) {
	if _, err := FitCoxPH(nil, nil, nil, DefaultCoxConfig()); err == nil {
		t.Fatal("expected error on empty input")
	}
	if _, err := FitCoxPH([][]float64{{1}}, []float64{1}, []bool{false}, DefaultCoxConfig()); err == nil {
		t.Fatal("expected error with zero events")
	}
	if _, err := FitCoxPH([][]float64{{1}}, []float64{1, 2}, []bool{true}, DefaultCoxConfig()); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestCoxPHBaselineHazardMonotone(t *testing.T) {
	X, dur, ev := coxData(300, 5)
	m, err := FitCoxPH(X, dur, ev, DefaultCoxConfig())
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, h := range m.cumH0 {
		if h < prev {
			t.Fatal("cumulative baseline hazard decreased")
		}
		prev = h
	}
}
