// Package censored implements the censored- and survival-regression
// baselines of the paper's Table 3: the linear Tobit model (Tobin 1958) and
// the Cox proportional-hazards model (Cox 1972) with a Breslow baseline
// hazard. (Grabit, the boosted Tobit, lives in package gbt as FitTobit.)
package censored

import (
	"fmt"
	"math"

	"repro/internal/linmodel"
	"repro/internal/stats"
	"repro/internal/vecmath"
)

// TobitConfig controls Tobit MLE.
type TobitConfig struct {
	// Iters bounds the gradient-ascent steps.
	Iters int
	// LR is the initial step size.
	LR float64
	// L2 regularizes the weights.
	L2 float64
}

// DefaultTobitConfig returns MLE settings adequate for trace-scale data.
func DefaultTobitConfig() TobitConfig {
	return TobitConfig{Iters: 300, LR: 0.1, L2: 1e-3}
}

// Tobit is a fitted linear censored-Gaussian regression y* = w·x + b + eps,
// observed as y = y* when uncensored and as the censoring point otherwise
// (right censoring).
type Tobit struct {
	W     []float64
	B     float64
	Sigma float64
	mean  []float64
	std   []float64
}

// FitTobit estimates the Tobit model by maximizing the censored-Gaussian
// log-likelihood with gradient ascent, initialized from a ridge fit on the
// uncensored rows. censored[i] marks right-censored rows whose y[i] is the
// censoring threshold (latency observed so far).
func FitTobit(X [][]float64, y []float64, censoredFlags []bool, cfg TobitConfig) (*Tobit, error) {
	n := len(X)
	if n == 0 {
		return nil, fmt.Errorf("censored: empty training set")
	}
	if len(y) != n || len(censoredFlags) != n {
		return nil, fmt.Errorf("censored: shape mismatch (%d rows, %d targets, %d flags)",
			n, len(y), len(censoredFlags))
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 300
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.1
	}
	mean, std := vecmath.ColumnStats(X)
	Z := vecmath.Standardize(X, mean, std)
	d := len(Z[0])

	// Initialize from ridge on uncensored rows.
	var uncX [][]float64
	var uncY []float64
	for i, c := range censoredFlags {
		if !c {
			uncX = append(uncX, Z[i])
			uncY = append(uncY, y[i])
		}
	}
	if len(uncX) == 0 {
		return nil, fmt.Errorf("censored: tobit requires at least one uncensored row")
	}
	w, b, err := linmodel.Ridge(uncX, uncY, cfg.L2)
	if err != nil {
		w = make([]float64, d)
		b = stats.Mean(uncY)
	}
	sigma := stats.StdDev(uncY)
	if sigma <= 0 {
		sigma = 1
	}
	logSigma := math.Log(sigma)

	gw := make([]float64, d)
	lr := cfg.LR
	prevLL := math.Inf(-1)
	for it := 0; it < cfg.Iters; it++ {
		sigma = math.Exp(logSigma)
		s2 := sigma * sigma
		for j := range gw {
			gw[j] = 0
		}
		gb, gls := 0.0, 0.0
		ll := 0.0
		for i := 0; i < n; i++ {
			f := vecmath.Dot(w, Z[i]) + b
			if !censoredFlags[i] {
				r := y[i] - f
				ll += -0.5*r*r/s2 - logSigma
				gf := r / s2
				for j := 0; j < d; j++ {
					gw[j] += gf * Z[i][j]
				}
				gb += gf
				gls += r*r/s2 - 1
			} else {
				z := (y[i] - f) / sigma
				surv := 1 - stats.NormalCDF(z)
				if surv < 1e-300 {
					surv = 1e-300
				}
				ll += math.Log(surv)
				lam := stats.NormalPDF(z) / surv
				gf := lam / sigma
				for j := 0; j < d; j++ {
					gw[j] += gf * Z[i][j]
				}
				gb += gf
				gls += lam * z
			}
		}
		// L2 penalty on weights.
		for j := 0; j < d; j++ {
			ll -= 0.5 * cfg.L2 * w[j] * w[j]
			gw[j] -= cfg.L2 * w[j]
		}
		if ll < prevLL {
			lr *= 0.5
			if lr < 1e-7 {
				break
			}
		}
		prevLL = ll
		inv := 1 / float64(n)
		for j := 0; j < d; j++ {
			w[j] += lr * gw[j] * inv
		}
		b += lr * gb * inv
		logSigma += lr * gls * inv * 0.1 // slower sigma adaptation for stability
	}
	return &Tobit{W: w, B: b, Sigma: math.Exp(logSigma), mean: mean, std: std}, nil
}

// Predict returns the latent-latency estimate w·x + b for x (raw features).
func (m *Tobit) Predict(x []float64) float64 {
	f := m.B
	for j := range m.W {
		f += m.W[j] * (x[j] - m.mean[j]) / m.std[j]
	}
	return f
}
