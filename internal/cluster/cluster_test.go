package cluster_test

// cluster_test.go pins the coordinator tier's headline claim: a cluster is
// a placement layer and nothing else. The same workload, streamed through a
// 3-node cluster and a 1-node server, must produce bit-identical per-job
// verdicts, reports, and macro F1 — the ring decides WHERE a job runs,
// never WHAT its serving run computes. The workload is the `steady`
// scenario, the baseline every perf claim in the repository cites.

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/servehttp"
	"repro/internal/simulator"
	"repro/internal/wal"
	"repro/internal/wal/waltest"
	"repro/internal/workload"
)

// The cluster must keep satisfying the HTTP front's backend surface: a
// multi-node deployment is NewHandler pointed at a Cluster.
var _ servehttp.Backend = (*cluster.Cluster)(nil)
var _ servehttp.Backend = (*serve.Server)(nil)

// steadyWorkload synthesizes the steady scenario once per test.
func steadyWorkload(t testing.TB) *workload.Workload {
	t.Helper()
	ws, ok := workload.Builtin("steady")
	if !ok {
		t.Fatal("steady scenario missing")
	}
	wl, err := workload.Synthesize(ws)
	if err != nil {
		t.Fatal(err)
	}
	return wl
}

// feed streams a workload's timeline into a backend in order, ignoring
// send-time pacing (virtual time is carried in the events themselves).
func feed(t testing.TB, b servehttp.Backend, wl *workload.Workload) {
	t.Helper()
	for i := range wl.Items {
		it := &wl.Items[i]
		if it.Spec != nil {
			if err := b.StartJob(*it.Spec, nil); err != nil {
				t.Fatalf("item %d: StartJob(%d): %v", i, it.Spec.JobID, err)
			}
			continue
		}
		if err := b.Ingest(*it.Event); err != nil {
			t.Fatalf("item %d: Ingest(job %d): %v", i, it.Event.JobID, err)
		}
	}
}

// deterministicReport strips wall-clock refit timings from a JobReport.
type deterministicReport struct {
	Spec                          serve.JobSpec
	Done, Failed                  bool
	Checkpoint                    int
	Started, Finished, Terminated int
	Refits, Generation, Pending   int
	PredictedAt                   map[int]int
}

func deterministic(r *serve.JobReport) deterministicReport {
	return deterministicReport{
		Spec: r.Spec, Done: r.Done, Failed: r.Failed, Checkpoint: r.Checkpoint,
		Started: r.Started, Finished: r.Finished, Terminated: r.Terminated,
		Refits: r.Refits, Generation: r.Generation, Pending: r.PendingRefits,
		PredictedAt: r.PredictedAt,
	}
}

// macroF1 averages per-job F1 against the workload's retained ground truth.
func macroF1(t testing.TB, b servehttp.Backend, wl *workload.Workload) float64 {
	t.Helper()
	ids := make([]uint64, 0, len(wl.Truth))
	for id := range wl.Truth {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var sum float64
	for _, id := range ids {
		rep, err := b.Report(id)
		if err != nil {
			t.Fatalf("report job %d: %v", id, err)
		}
		sum += rep.Confusion(wl.Truth[id]).F1()
	}
	return sum / float64(len(ids))
}

// TestClusterMatchesSingleNode is the acceptance pin: 3 nodes vs 1 node on
// `steady`, verdicts and macro F1 bit-identical.
func TestClusterMatchesSingleNode(t *testing.T) {
	wl := steadyWorkload(t)
	cfg := serve.Config{Shards: 2}

	single := serve.NewServer(cfg)
	feed(t, single, wl)
	cl := cluster.New(3, cfg)
	feed(t, cl, wl)

	if got, want := len(cl.JobIDs()), wl.Jobs; got != want {
		t.Fatalf("cluster registered %d jobs, workload has %d", got, want)
	}
	if !reflect.DeepEqual(cl.JobIDs(), single.JobIDs()) {
		t.Fatal("cluster and single-node job ID sets diverge")
	}

	for _, id := range single.JobIDs() {
		sr, err := single.Report(id)
		if err != nil {
			t.Fatal(err)
		}
		cr, err := cl.Report(id)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(deterministic(sr), deterministic(cr)) {
			t.Fatalf("job %d: reports diverge:\n single  %+v\n cluster %+v",
				id, deterministic(sr), deterministic(cr))
		}
		ids := make([]int, sr.Spec.NumTasks+1)
		for i := range ids {
			ids[i] = i - 1 // one out-of-range probe
		}
		sv, err := single.Query(id, ids)
		if err != nil {
			t.Fatal(err)
		}
		cv, err := cl.Query(id, ids)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sv, cv) {
			t.Fatalf("job %d: verdicts diverge between 1-node and 3-node serving", id)
		}
	}

	sF1, cF1 := macroF1(t, single, wl), macroF1(t, cl, wl)
	if sF1 != cF1 {
		t.Fatalf("macro F1 diverges: single %.17g, cluster %.17g", sF1, cF1)
	}
	if sF1 == 0 {
		t.Fatal("macro F1 is zero — the workload terminated nothing, the pin is vacuous")
	}

	// The aggregate view covers the whole workload: every node contributed.
	st := cl.Stats()
	if st.Jobs != wl.Jobs || st.Events != single.Stats().Events {
		t.Fatalf("aggregate stats: jobs=%d events=%d, single node saw jobs=%d events=%d",
			st.Jobs, st.Events, single.Stats().Jobs, single.Stats().Events)
	}
	for i, ns := range cl.NodeStats() {
		if ns.Jobs == 0 {
			t.Errorf("node %d served zero jobs — the ring left it idle on steady", i)
		}
	}
}

// TestClusterRouting pins placement mechanics: a job's events land on the
// node the ring names — and only there.
func TestClusterRouting(t *testing.T) {
	cfg := serve.Config{Shards: 1, NewPredictor: func(serve.JobSpec) simulator.Predictor { return nopPredictor{} }}
	cl := cluster.New(4, cfg)
	for id := uint64(1); id <= 40; id++ {
		spec := serve.JobSpec{JobID: id, Schema: []string{"cpu"}, NumTasks: 2,
			TauStra: 10, Horizon: 100, Checkpoints: 4, WarmFrac: 0.25, Seed: id}
		if err := cl.StartJob(spec, nil); err != nil {
			t.Fatal(err)
		}
		if err := cl.Ingest(serve.Event{Kind: serve.EventTaskStart, JobID: id, TaskID: 0, Time: 1}); err != nil {
			t.Fatal(err)
		}
	}
	nodes := cl.Nodes()
	for id := uint64(1); id <= 40; id++ {
		owner := cl.NodeFor(id)
		for i, sv := range nodes {
			_, err := sv.Report(id)
			if i == owner && err != nil {
				t.Fatalf("job %d missing from its owner node %d: %v", id, owner, err)
			}
			if i != owner && err == nil {
				t.Fatalf("job %d present on node %d, owner is %d", id, i, owner)
			}
		}
	}
	// Placement is a pure function of cluster size: a second cluster (a
	// "restarted process") routes identically.
	again := cluster.New(4, cfg)
	for id := uint64(1); id <= 40; id++ {
		if cl.NodeFor(id) != again.NodeFor(id) {
			t.Fatalf("job %d: placement changed across ring rebuilds", id)
		}
	}
}

// nopPredictor flags nothing.
type nopPredictor struct{}

func (nopPredictor) Name() string { return "nop" }
func (nopPredictor) Reset()       {}
func (nopPredictor) Predict(cp *simulator.Checkpoint) ([]bool, error) {
	return make([]bool, len(cp.RunningIDs)), nil
}

// TestClusterWALRecovery: each node journals to its own WAL directory, and
// a crashed cluster (nothing closed) rebuilt over the same directories
// recovers every node's jobs onto the same nodes with identical verdicts —
// ring stability is what makes per-node logs recoverable.
func TestClusterWALRecovery(t *testing.T) {
	fs := waltest.NewMemFS()
	cfg := serve.Config{Shards: 1, NewPredictor: func(serve.JobSpec) simulator.Predictor { return flagAllPredictor{} }}
	cl, _, err := cluster.Recover("croot", 3, cfg, wal.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 12; id++ {
		spec := serve.JobSpec{JobID: id, Schema: []string{"cpu"}, NumTasks: 3,
			TauStra: 10, Horizon: 100, Checkpoints: 4, WarmFrac: 0.25, Seed: id}
		if err := cl.StartJob(spec, nil); err != nil {
			t.Fatal(err)
		}
		for task := 0; task < 3; task++ {
			if err := cl.Ingest(serve.Event{Kind: serve.EventTaskStart, JobID: id, TaskID: task, Time: 1}); err != nil {
				t.Fatal(err)
			}
		}
		if err := cl.Ingest(serve.Event{Kind: serve.EventTaskFinish, JobID: id, TaskID: 0, Time: 3, Latency: 2}); err != nil {
			t.Fatal(err)
		}
	}
	want := map[uint64][]serve.TaskVerdict{}
	for _, id := range cl.JobIDs() {
		vs, err := cl.Query(id, []int{0, 1, 2})
		if err != nil {
			t.Fatal(err)
		}
		want[id] = vs
	}

	// Crash: no Close, no checkpoint. Recover a fresh cluster over the same
	// directories.
	revived, stats, err := cluster.Recover("croot", 3, cfg, wal.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer revived.Close()
	var recovered uint64
	for _, st := range stats {
		recovered += uint64(st.RecordsApplied)
	}
	if recovered == 0 {
		t.Fatal("no WAL records recovered — the per-node logs were never written")
	}
	if got := revived.JobIDs(); len(got) != 12 {
		t.Fatalf("recovered %d jobs, want 12", len(got))
	}
	for id, vs := range want {
		got, err := revived.Query(id, []int{0, 1, 2})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(vs, got) {
			t.Fatalf("job %d: verdicts diverge after per-node WAL recovery", id)
		}
		// And the job still lives on the node the ring names.
		if _, err := revived.Nodes()[revived.NodeFor(id)].Report(id); err != nil {
			t.Fatalf("job %d not on its ring node after recovery: %v", id, err)
		}
	}
}

// flagAllPredictor flags every running task (deterministic, model-free).
type flagAllPredictor struct{}

func (flagAllPredictor) Name() string { return "flag-all" }
func (flagAllPredictor) Reset()       {}
func (flagAllPredictor) Predict(cp *simulator.Checkpoint) ([]bool, error) {
	out := make([]bool, len(cp.RunningIDs))
	for i := range out {
		out[i] = true
	}
	return out, nil
}
