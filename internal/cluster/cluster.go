package cluster

// cluster.go is the coordinator itself: N in-process serve.Servers behind
// one Ring. Every job-scoped call routes to the owning node; cluster-wide
// reads scatter to all nodes and gather. The Cluster implements the same
// serving surface servehttp.NewHandler consumes, so a multi-node front end
// is the single-node front end pointed at a Cluster instead of a Server.

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"

	"repro/internal/serve"
	"repro/internal/simulator"
	"repro/internal/wal"
)

// Cluster routes jobs across a fixed set of in-process nodes.
type Cluster struct {
	cfg   serve.Config
	ring  *Ring
	nodes []*serve.Server
	wals  []*wal.WAL // parallel to nodes; nil entries for WAL-less nodes
}

// New builds an n-node cluster of fresh, WAL-less servers sharing one
// config. Each node gets its own serve.Server — own shards, own refit pool,
// own overload accounting — exactly as if it were a separate process.
func New(n int, cfg serve.Config) *Cluster {
	if n < 1 {
		panic("cluster: need at least one node")
	}
	c := &Cluster{cfg: cfg, ring: NewRing(n), nodes: make([]*serve.Server, n), wals: make([]*wal.WAL, n)}
	for i := range c.nodes {
		c.nodes[i] = serve.NewServer(cfg)
	}
	return c
}

// NodeDir names node i's WAL directory under the cluster root. Placement is
// a pure function of the node count (see NewRing), so a directory written
// by node i always recovers into node i.
func NodeDir(root string, i int) string {
	return filepath.Join(root, fmt.Sprintf("node-%03d", i))
}

// Recover builds an n-node cluster whose nodes each recover from (and keep
// appending to) their own WAL directory under root: root/node-000,
// root/node-001, ... Missing directories start empty, like serve.Recover.
// The returned stats are per node, in node order.
func Recover(root string, n int, cfg serve.Config, opts wal.Options) (*Cluster, []serve.RecoveryStats, error) {
	if n < 1 {
		return nil, nil, errors.New("cluster: need at least one node")
	}
	c := &Cluster{cfg: cfg, ring: NewRing(n), nodes: make([]*serve.Server, n), wals: make([]*wal.WAL, n)}
	stats := make([]serve.RecoveryStats, n)
	for i := range c.nodes {
		sv, w, rst, err := serve.Recover(NodeDir(root, i), cfg, opts)
		if err != nil {
			c.Close()
			return nil, nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		c.nodes[i], c.wals[i], stats[i] = sv, w, rst
	}
	return c, stats, nil
}

// Close closes every node's WAL (no-op for WAL-less nodes), returning the
// first error.
func (c *Cluster) Close() error {
	var first error
	for _, w := range c.wals {
		if w == nil {
			continue
		}
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// NumNodes returns the cluster size.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// Nodes exposes the underlying servers (for tests and per-node probes); the
// slice must not be mutated.
func (c *Cluster) Nodes() []*serve.Server { return c.nodes }

// NodeFor returns the ring's owner for a job ID.
func (c *Cluster) NodeFor(jobID uint64) int { return c.ring.Node(jobID) }

// node returns the owning server for a job ID.
func (c *Cluster) node(jobID uint64) *serve.Server { return c.nodes[c.ring.Node(jobID)] }

// StartJob registers the job on its owning node.
func (c *Cluster) StartJob(spec serve.JobSpec, pred simulator.Predictor) error {
	return c.node(spec.JobID).StartJob(spec, pred)
}

// Ingest routes one event to its job's node.
func (c *Cluster) Ingest(e serve.Event) error {
	return c.node(e.JobID).Ingest(e)
}

// IngestBatch routes each event in order. Per-job event order is preserved
// (a job's events all land on one node, in call order), which is the only
// order the protocol defines.
func (c *Cluster) IngestBatch(events []serve.Event) error {
	for i := range events {
		if err := c.Ingest(events[i]); err != nil {
			return fmt.Errorf("cluster: event %d: %w", i, err)
		}
	}
	return nil
}

// FinishJob closes the job's stream on its owning node.
func (c *Cluster) FinishJob(jobID uint64, t float64) error {
	return c.node(jobID).FinishJob(jobID, t)
}

// DropJob removes the job from its owning node.
func (c *Cluster) DropJob(jobID uint64) error {
	return c.node(jobID).DropJob(jobID)
}

// Query answers a batched verdict query from the job's owning node.
func (c *Cluster) Query(jobID uint64, taskIDs []int) ([]serve.TaskVerdict, error) {
	return c.node(jobID).Query(jobID, taskIDs)
}

// IsStraggler asks the job's owning node for one task's verdict.
func (c *Cluster) IsStraggler(jobID uint64, taskID int) (bool, error) {
	return c.node(jobID).IsStraggler(jobID, taskID)
}

// Report returns the job's serving report from its owning node.
func (c *Cluster) Report(jobID uint64) (*serve.JobReport, error) {
	return c.node(jobID).Report(jobID)
}

// JobIDs gathers every node's registered job IDs, sorted ascending.
func (c *Cluster) JobIDs() []uint64 {
	var ids []uint64
	for _, sv := range c.nodes {
		ids = append(ids, sv.JobIDs()...)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// NumShards sums the nodes' shard counts.
func (c *Cluster) NumShards() int {
	n := 0
	for _, sv := range c.nodes {
		n += sv.NumShards()
	}
	return n
}

// Config returns the config every node was built with.
func (c *Cluster) Config() serve.Config { return c.cfg }

// RetryHint returns the most loaded node's transient back-off hint: a
// client backing off for the cluster must respect its slowest member, since
// the router may send its next batch anywhere.
func (c *Cluster) RetryHint() int {
	hint := 1
	for _, sv := range c.nodes {
		if h := sv.RetryHint(); h > hint {
			hint = h
		}
	}
	return hint
}

// Stats scatter-gathers every node's counters into one cluster-wide view:
// monotonic counters and live gauges sum, high-water marks take the max,
// and per-node bounds (queue bounds, retry hint) report the shared config's
// value. Per-node WAL counters are not folded in — durability lag is a
// per-node operational signal (see NodeStats), and summing next-LSNs across
// independent logs would fabricate a number no log carries.
func (c *Cluster) Stats() serve.Stats {
	var agg serve.Stats
	for i, sv := range c.nodes {
		st := sv.Stats()
		if i == 0 {
			// Shared-config bounds: identical on every node.
			agg.Overload.IngestQueueBound = st.Overload.IngestQueueBound
			agg.Overload.RefitQueueBound = st.Overload.RefitQueueBound
		}
		agg.Jobs += st.Jobs
		agg.ActiveJobs += st.ActiveJobs
		agg.Events += st.Events
		agg.DroppedEvents += st.DroppedEvents
		agg.Terminations += st.Terminations
		agg.Queries += st.Queries
		agg.Refits += st.Refits
		agg.RefitTotal += st.RefitTotal
		if st.RefitMax > agg.RefitMax {
			agg.RefitMax = st.RefitMax
		}
		agg.RefitQueue += st.RefitQueue
		agg.RefitInflight += st.RefitInflight
		agg.RefitLag += st.RefitLag
		agg.WarmFits += st.WarmFits
		agg.ScratchFits += st.ScratchFits
		agg.Overload.ShedHeartbeats += st.Overload.ShedHeartbeats
		agg.Overload.ShedFinishes += st.Overload.ShedFinishes
		agg.Overload.IngestWaits += st.Overload.IngestWaits
		agg.Overload.IngestQueueDepth += st.Overload.IngestQueueDepth
		agg.Overload.RateLimited += st.Overload.RateLimited
		agg.Overload.RateShedHeartbeats += st.Overload.RateShedHeartbeats
		agg.Overload.DegradedQueries += st.Overload.DegradedQueries
		agg.Overload.InlineRefits += st.Overload.InlineRefits
	}
	agg.Overload.RetryHintSeconds = c.RetryHint()
	return agg
}

// NodeStats returns each node's own counters, in node order — the per-node
// view behind the Stats aggregate, including WAL counters.
func (c *Cluster) NodeStats() []serve.Stats {
	out := make([]serve.Stats, len(c.nodes))
	for i, sv := range c.nodes {
		out[i] = sv.Stats()
	}
	return out
}

// CheckpointWAL checkpoints every WAL-backed node, returning the paths of
// the snapshots written (empty for a WAL-less cluster).
func (c *Cluster) CheckpointWAL() ([]string, error) {
	var paths []string
	for i, sv := range c.nodes {
		if c.wals[i] == nil {
			continue
		}
		path, _, err := sv.CheckpointWAL()
		if err != nil {
			return paths, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// Snapshot writes each node's snapshot to its own writer, in node order
// (snapshots are per-node streams: a node restores its own, and the ring
// re-derives the same placement). Callers wanting one archive concatenate
// at a higher layer where framing is theirs to define.
func (c *Cluster) Snapshot(writers []io.Writer) error {
	if len(writers) != len(c.nodes) {
		return fmt.Errorf("cluster: %d writers for %d nodes", len(writers), len(c.nodes))
	}
	for i, sv := range c.nodes {
		if err := sv.Snapshot(writers[i]); err != nil {
			return fmt.Errorf("cluster: node %d: %w", i, err)
		}
	}
	return nil
}
