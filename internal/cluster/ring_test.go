package cluster

import (
	"testing"

	"repro/internal/wire"
)

// TestRingBalance pins the coordinator's load-spread claim: with 64 virtual
// points per node, the busiest node's job share stays under 1.6x the
// idlest's for every cluster size the scale-out design targets (3–16
// nodes). Jobs are sequential IDs — the common allocation pattern — mixed
// onto the ring exactly as Cluster routes them.
func TestRingBalance(t *testing.T) {
	const jobs = 200000
	for n := 3; n <= 16; n++ {
		r := NewRing(n)
		counts := make([]int, n)
		for id := uint64(1); id <= jobs; id++ {
			counts[r.Node(id)]++
		}
		min, max := counts[0], counts[0]
		for _, c := range counts[1:] {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if min == 0 {
			t.Fatalf("%d nodes: a node received zero jobs: %v", n, counts)
		}
		if ratio := float64(max) / float64(min); ratio >= 1.6 {
			t.Errorf("%d nodes: max/min job share %.3f, want < 1.6 (counts %v)", n, ratio, counts)
		}
	}
}

// TestRingPlacementStable pins recoverability: the ring is a pure function
// of the node count, so a restarted process (a fresh NewRing) places every
// job on the same node — each node's WAL directory recovers into the node
// that wrote it.
func TestRingPlacementStable(t *testing.T) {
	for _, n := range []int{1, 3, 5, 8, 16} {
		a, b := NewRing(n), NewRing(n)
		for id := uint64(0); id < 10000; id++ {
			if an, bn := a.Node(id), b.Node(id); an != bn {
				t.Fatalf("%d nodes: job %d placed on node %d, rebuilt ring says %d", n, id, an, bn)
			}
		}
	}
}

// TestRingCoversHashSpace: lookups at the extremes of the hash space wrap
// correctly and always return a valid node.
func TestRingCoversHashSpace(t *testing.T) {
	r := NewRing(4)
	// Probe raw positions around every point boundary plus the space's ends
	// by inverting nothing — Node mixes its argument, so just sweep a dense
	// set of IDs and check the range.
	for id := uint64(0); id < 100000; id++ {
		if n := r.Node(id); n < 0 || n >= 4 {
			t.Fatalf("job %d routed to node %d, want [0,4)", id, n)
		}
	}
	// The wrap case specifically: an ID whose mixed hash lands above the
	// highest virtual point takes points[0]'s node.
	top := r.points[len(r.points)-1].hash
	found := false
	for id := uint64(0); id < 1_000_000 && !found; id++ {
		if wire.Mix64(id) > top {
			if got, want := r.Node(id), r.points[0].node; got != want {
				t.Fatalf("wrap: job %d above the top point routed to %d, want %d", id, got, want)
			}
			found = true
		}
	}
	if !found {
		t.Skip("no probe ID hashed above the top virtual point")
	}
}

// TestRingSingleNode: a 1-node ring routes everything to node 0 (the
// degenerate cluster equals a single server).
func TestRingSingleNode(t *testing.T) {
	r := NewRing(1)
	for id := uint64(0); id < 1000; id++ {
		if r.Node(id) != 0 {
			t.Fatalf("1-node ring routed job %d to node %d", id, r.Node(id))
		}
	}
}
