// Package cluster is the in-process coordinator tier above the single-node
// serving core: a consistent-hash ring routes every job-scoped operation
// (StartJob, Ingest, Query, Report) to one of N serve.Servers by job ID,
// while job-agnostic reads (Stats, JobIDs) scatter to every node and gather
// an aggregate. Nodes are ordinary serve.Servers — each may carry its own
// write-ahead log directory — so everything the single-node layer
// guarantees (recovery equivalence, overload policy, refit determinism)
// holds per node, and the coordinator adds only placement.
//
// Placement is deterministic: the ring is built from the node count alone,
// with VNodesPerNode virtual points per node derived from the same
// splitmix64 finalizer (wire.Mix64) the registry uses for shard placement.
// Same node count, same ring — across process restarts, a job always lands
// on the same node, which is what lets each node recover its own WAL and
// the cluster reassemble exactly the pre-crash assignment.
package cluster

import (
	"sort"

	"repro/internal/wire"
)

// VNodesPerNode is how many virtual points each node contributes to the
// ring. More points smooth the arc-length distribution between nodes; 64
// keeps the max/min job-share ratio under 1.6 across 3–16 nodes (pinned by
// TestRingBalance) while lookups stay a binary search over ≤ 1024 points.
const VNodesPerNode = 64

// splitmixGamma is the splitmix64 stream increment; combined with
// wire.Mix64 it turns (node, vnode) pairs into well-spread ring points.
const splitmixGamma = 0x9e3779b97f4a7c15

// Ring is a consistent-hash ring over a fixed set of nodes, identified by
// index 0..n-1. It is immutable after construction and safe for concurrent
// use.
type Ring struct {
	nodes  int
	points []ringPoint // ascending by hash
}

type ringPoint struct {
	hash uint64
	node int
}

// NewRing builds the ring for n nodes (n >= 1). The construction is a pure
// function of n: ring placement is stable across restarts.
func NewRing(n int) *Ring {
	if n < 1 {
		panic("cluster: ring needs at least one node")
	}
	r := &Ring{nodes: n, points: make([]ringPoint, 0, n*VNodesPerNode)}
	for node := 0; node < n; node++ {
		// Each (node, vnode) pair owns a distinct input — the pairs are
		// enumerated, then pushed through one splitmix64 step (gamma
		// multiply + finalizer), whose avalanche spreads consecutive
		// inputs across the whole ring. Disjointness matters: seeding
		// per-node arithmetic streams from the node index makes adjacent
		// nodes share almost all their points.
		for v := 0; v < VNodesPerNode; v++ {
			x := uint64(node*VNodesPerNode+v+1) * splitmixGamma
			r.points = append(r.points, ringPoint{hash: wire.Mix64(x), node: node})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node // deterministic tie-break
	})
	return r
}

// Nodes returns the node count the ring was built for.
func (r *Ring) Nodes() int { return r.nodes }

// Node maps a job ID to its owning node: the job's hash point walks
// clockwise to the first virtual point at or past it (wrapping at the top).
// Job IDs are mixed first so adjacent IDs — the common allocation pattern —
// scatter instead of marching around the ring together.
func (r *Ring) Node(jobID uint64) int {
	h := wire.Mix64(jobID)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}
