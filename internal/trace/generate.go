package trace

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// GenConfig controls synthetic workload generation.
type GenConfig struct {
	// Mode selects the feature schema and latency regime.
	Mode Mode
	// MinTasks/MaxTasks bound the per-job task count (the paper filters to
	// jobs with >= 100 tasks; Google jobs run up to 9999).
	MinTasks, MaxTasks int
	// FarFraction is the probability a job is generated with ProfileFar
	// (bimodal latency; feature-distant stragglers). The remainder use
	// ProfileNear.
	FarFraction float64
	// Seed drives everything.
	Seed uint64
}

// Mode selects a trace flavor.
type Mode uint8

// Workload flavors corresponding to the paper's two trace datasets.
const (
	ModeGoogle Mode = iota
	ModeAlibaba
)

// String returns the mode label.
func (m Mode) String() string {
	if m == ModeGoogle {
		return "google"
	}
	return "alibaba"
}

// DefaultGoogleConfig returns a generator for Google-like jobs.
func DefaultGoogleConfig(seed uint64) GenConfig {
	return GenConfig{Mode: ModeGoogle, MinTasks: 100, MaxTasks: 400, FarFraction: 0.5, Seed: seed}
}

// DefaultAlibabaConfig returns a generator for Alibaba-like jobs.
func DefaultAlibabaConfig(seed uint64) GenConfig {
	return GenConfig{Mode: ModeAlibaba, MinTasks: 100, MaxTasks: 400, FarFraction: 0.5, Seed: seed}
}

// Generator produces random jobs from a config.
type Generator struct {
	cfg GenConfig
	rng *stats.RNG
	n   uint64
}

// NewGenerator validates cfg and returns a generator.
func NewGenerator(cfg GenConfig) (*Generator, error) {
	if cfg.MinTasks < 10 {
		return nil, fmt.Errorf("trace: MinTasks must be >= 10, got %d", cfg.MinTasks)
	}
	if cfg.MaxTasks < cfg.MinTasks {
		return nil, fmt.Errorf("trace: MaxTasks %d < MinTasks %d", cfg.MaxTasks, cfg.MinTasks)
	}
	if cfg.FarFraction < 0 || cfg.FarFraction > 1 {
		return nil, fmt.Errorf("trace: FarFraction must be in [0,1], got %v", cfg.FarFraction)
	}
	return &Generator{cfg: cfg, rng: stats.NewRNG(cfg.Seed)}, nil
}

// Next generates the next job in the stream.
func (g *Generator) Next() *Job {
	g.n++
	jobSeed := g.rng.Uint64()
	profile := ProfileNear
	if g.rng.Bernoulli(g.cfg.FarFraction) {
		profile = ProfileFar
	}
	ntasks := g.cfg.MinTasks + g.rng.Intn(g.cfg.MaxTasks-g.cfg.MinTasks+1)
	switch g.cfg.Mode {
	case ModeGoogle:
		return genGoogleJob(g.n, jobSeed, ntasks, profile)
	default:
		return genAlibabaJob(g.n, jobSeed, ntasks, profile)
	}
}

// Jobs generates n jobs.
func (g *Generator) Jobs(n int) []*Job {
	out := make([]*Job, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// GenJob generates a single job with explicitly chosen shape parameters —
// the entry point for workload synthesis layers that draw task counts and
// profiles from their own distributions instead of this package's uniform
// MinTasks/MaxTasks config. The job is deterministic in (mode, id, seed,
// ntasks, profile).
func GenJob(mode Mode, id, seed uint64, ntasks int, profile Profile) (*Job, error) {
	if ntasks < 10 {
		return nil, fmt.Errorf("trace: GenJob needs >= 10 tasks, got %d", ntasks)
	}
	switch mode {
	case ModeGoogle:
		return genGoogleJob(id, seed, ntasks, profile), nil
	case ModeAlibaba:
		return genAlibabaJob(id, seed, ntasks, profile), nil
	default:
		return nil, fmt.Errorf("trace: unknown mode %d", mode)
	}
}

// The causal model. Every task has latent work W (input size) and speed S
// (effective machine throughput); latency L = W/S, with per-job scale. All
// monitored usage features derive from (W, S, io-intensity, footprint), so
// fast tasks genuinely look small — the property of production traces that
// both makes latency learnable from features and gives NURD's centroid
// ratio rho its discriminating power:
//
//   - ProfileFar jobs: wide work spread and strong causes (skewed inputs,
//     badly degraded nodes). Stragglers are far outliers in latency AND
//     visibly shifted in features -> big centroid gap -> rho tends <= 1.
//   - ProfileNear jobs: homogeneous work, mild causes, heavy residual
//     noise. Latency spreads smoothly (p90 above half of max) and
//     stragglers look feature-similar -> small centroid gap -> rho > 1.
//
// A slice of "benign eccentric" tasks (odd feature profiles, ordinary
// latency) is mixed in so that feature-space outliers are NOT reliably
// latency outliers, the failure mode of pure outlier detection that the
// paper highlights (§3.2).
type jobCoeffs struct {
	scale        float64 // job latency scale (seconds per unit work)
	sigmaW       float64 // work-size spread (log space)
	noise        float64 // residual log-latency noise
	straggleP    float64 // probability a task receives a straggle cause
	benignP      float64 // probability of a benign eccentric task
	shift        float64 // feature visibility of causes (0..1)
	mulLo        float64 // straggle slowdown range
	mulHi        float64
	tailP        float64 // probability of a cause-less heavy-tail slowdown
	tailShape    float64 // Pareto shape of that slowdown (smaller = fatter)
	uniformNoise bool    // near jobs: bounded uniform residual instead of lognormal
	uniLo, uniHi float64
	severity     float64 // scales how hard a cause slows its task (0..1]
}

func drawCoeffs(rng *stats.RNG, profile Profile) jobCoeffs {
	c := jobCoeffs{
		scale:     rng.Uniform(20, 80),
		straggleP: rng.Uniform(0.10, 0.12),
		benignP:   rng.Uniform(0.12, 0.2),
	}
	if profile == ProfileFar {
		c.sigmaW = rng.Uniform(0.3, 0.5)
		c.noise = rng.Uniform(0.12, 0.25)
		c.shift = rng.Uniform(0.7, 1.0)
		c.mulLo, c.mulHi = 3.5, 9.0
		// Far jobs have genuinely long tails even without a cause.
		c.tailP, c.tailShape = 0.2, 3.5
		c.severity = 1
	} else {
		c.sigmaW = rng.Uniform(0.12, 0.22)
		c.shift = rng.Uniform(0.6, 0.85)
		// Near jobs: latency spreads widely but stays bounded (no Pareto
		// tail; bounded uniform residual), so the p90 threshold lands above
		// half of the maximum latency (Figure 1 right) while the residual
		// remains feature-invisible and hard to regress.
		c.uniformNoise = true
		c.uniLo, c.uniHi = 0.65, rng.Uniform(1.9, 2.3)
		c.mulLo, c.mulHi = 2.6, 3.6
		c.severity = 0.45
	}
	return c
}

// taskLatents samples one task's latent variables and cause.
type taskLatents struct {
	work   float64 // relative input size, E[.] ~= 1
	speed  float64 // relative machine speed, E[.] ~= 1
	ioInt  float64 // IO intensity (fraction of work that is IO)
	foot   float64 // memory footprint scale
	cause  Cause
	benign bool
}

func drawLatents(rng *stats.RNG, co jobCoeffs) taskLatents {
	l := taskLatents{
		work:  rng.LogNormal(-co.sigmaW*co.sigmaW/2, co.sigmaW), // mean 1
		speed: stats.Clip(rng.Normal(1, 0.08), 0.6, 1.4),
		ioInt: stats.Clip(rng.Normal(0.3, 0.1), 0.05, 0.8),
		foot:  stats.Clip(rng.Normal(0.4, 0.12), 0.05, 1),
	}
	if rng.Bernoulli(co.straggleP) {
		switch rng.Intn(3) {
		case 0:
			l.cause = CauseSlowNode
		case 1:
			l.cause = CauseContention
		default:
			l.cause = CauseSkew
		}
	} else if rng.Bernoulli(co.benignP) {
		l.benign = true
	}
	s := co.shift
	sev := co.severity
	if sev <= 0 {
		sev = 1
	}
	switch l.cause {
	case CauseSlowNode:
		// Degraded machine: low effective speed; visible as high CPI.
		l.speed *= 1 - rng.Uniform(0.45, 0.75)*liftToOne(s)*sev
	case CauseContention:
		// Co-located noisy neighbor: medium slowdown, inflated usage.
		l.speed *= 1 - rng.Uniform(0.3, 0.6)*liftToOne(s)*sev
	case CauseSkew:
		// Skewed input partition: much more work, IO heavy.
		l.work *= 1 + (rng.Uniform(2.5, 6)-1)*liftToOne(s)*sev
		l.ioInt = stats.Clip(l.ioInt*rng.Uniform(1.5, 2.5), 0.05, 0.95)
	}
	if l.benign {
		// Odd but harmless profile: unusual IO intensity and footprint at
		// ordinary latency.
		l.ioInt = stats.Clip(l.ioInt*rng.Uniform(2, 4), 0.05, 0.95)
		l.foot = stats.Clip(l.foot*rng.Uniform(1.8, 3), 0.05, 1.6)
	}
	return l
}

// liftToOne maps shift strength s in (0,1] to a multiplier in (0,1]: with
// full shift the cause acts at full strength; with weak shift the cause
// still slows the task but by a reduced, less feature-visible amount.
func liftToOne(s float64) float64 {
	return 0.4 + 0.6*s
}

// latency computes L = scale * work / speed * mult * exp(noise). The
// work/speed shifts already slow cause-affected tasks; the residual
// multiplier tops them up so that a drawn cause almost always lands the
// task beyond the p90 boundary rather than leaving feature-shifted
// "mini-stragglers" just below it.
func latency(rng *stats.RNG, co jobCoeffs, l taskLatents) float64 {
	var resid float64
	if co.uniformNoise {
		resid = rng.Uniform(co.uniLo, co.uniHi)
	} else {
		resid = math.Exp(rng.Normal(0, co.noise))
	}
	lat := co.scale * l.work / l.speed * resid
	if l.cause != CauseNone {
		mult := rng.Uniform(co.mulLo, co.mulHi) / 2
		if mult < 1.3 {
			mult = 1.3
		}
		lat *= mult
	} else if rng.Bernoulli(co.tailP) {
		// Residual heavy tail: occasional cause-less slowdowns whose
		// magnitude no feature predicts. These violate the Gaussian
		// residual assumption of censored regression (Tobit/Grabit) the
		// way production latencies do.
		lat *= rng.Pareto(1, co.tailShape)
	}
	return lat
}

// genGoogleJob builds one Google-schema job.
func genGoogleJob(id, seed uint64, ntasks int, profile Profile) *Job {
	rng := stats.NewRNG(seed)
	co := drawCoeffs(rng, profile)
	j := &Job{
		ID:        id,
		Schema:    GoogleFeatures,
		Tasks:     make([]Task, ntasks),
		Profile:   profile,
		noiseSeed: rng.Uint64(),
	}
	window := rng.Uniform(0.5, 2) * co.scale // dispatch wave duration
	for i := 0; i < ntasks; i++ {
		l := drawLatents(rng, co)
		lat := latency(rng, co, l)
		start := rng.Uniform(0, window)
		f := make([]float64, len(GoogleFeatures))
		s := co.shift

		// CPU rates: busier when contended, lower when starved by a slow
		// node.
		cpu := stats.Clip(0.45*l.speed+rng.Normal(0, 0.06), 0.02, 1)
		if l.cause == CauseContention {
			cpu = stats.Clip(cpu*(1+s*rng.Uniform(0.6, 1.2)), 0.02, 1.3)
		}
		cpi := stats.Clip(1.2/l.speed+rng.Normal(0, 0.1), 0.4, 8)
		if l.cause == CauseContention {
			cpi *= 1 + s*rng.Uniform(0.2, 0.6)
		}
		// Work-proportional usage: memory, page cache, disk, IO time.
		mem := stats.Clip(l.foot*math.Pow(l.work, 0.5)+rng.Normal(0, 0.03), 0.01, 3)
		io := l.work * l.ioInt * rng.Uniform(0.8, 1.2)
		dsk := stats.Clip(0.3*l.work*rng.Uniform(0.8, 1.2), 0.01, 5)

		f[gMCU] = cpu
		f[gMAXCPU] = stats.Clip(cpu*rng.Uniform(1.1, 1.6), 0.02, 1.6)
		f[gSCPU] = stats.Clip(cpu+rng.Normal(0, 0.04), 0, 1.6)
		f[gCMU] = mem
		f[gAMU] = stats.Clip(mem*rng.Uniform(1.0, 1.4), 0.01, 4)
		f[gMAXMU] = stats.Clip(mem*rng.Uniform(1.1, 1.5), 0.01, 4.5)
		f[gUPC] = stats.Clip(0.1*l.foot+rng.Normal(0, 0.02), 0, 0.8)
		f[gTPC] = stats.Clip(f[gUPC]+0.2*mem*rng.Uniform(0.8, 1.2), 0, 2)
		f[gMIO] = io
		f[gMAXIO] = io * rng.Uniform(1.2, 2.5)
		f[gMDK] = dsk
		f[gCPI] = cpi
		f[gMAI] = stats.Clip(0.05*cpi*rng.Uniform(0.8, 1.2), 0.005, 0.6)
		evP, flP := 0.03, 0.02
		if l.cause == CauseContention {
			evP += 0.3 * s
		}
		if l.cause == CauseSlowNode {
			flP += 0.2 * s
		}
		f[gEV] = float64(countEvents(rng, evP, 3))
		f[gFL] = float64(countEvents(rng, flP, 3))

		j.Tasks[i] = Task{ID: i, Start: start, Latency: lat, Features: f, TrueCause: l.cause}
	}
	capNearProfile(rng, j)
	return j
}

// genAlibabaJob builds one Alibaba-schema job: only 4 coarse features, so
// the observable signal is much weaker than Google's (skew is invisible,
// CPI does not exist) — the regime in which every method's F1 drops and the
// NURD margin narrows.
func genAlibabaJob(id, seed uint64, ntasks int, profile Profile) *Job {
	rng := stats.NewRNG(seed)
	co := drawCoeffs(rng, profile)
	co.noise *= 1.2
	j := &Job{
		ID:        id,
		Schema:    AlibabaFeatures,
		Tasks:     make([]Task, ntasks),
		Profile:   profile,
		noiseSeed: rng.Uint64(),
	}
	window := rng.Uniform(0.5, 2) * co.scale // dispatch wave duration
	for i := 0; i < ntasks; i++ {
		l := drawLatents(rng, co)
		lat := latency(rng, co, l)
		start := rng.Uniform(0, window)
		s := co.shift
		cpu := stats.Clip(4*l.speed+rng.Normal(0, 0.5), 0.5, 16)
		if l.cause == CauseContention {
			cpu = stats.Clip(cpu*(1+s*rng.Uniform(0.3, 0.8)), 0.5, 24)
		}
		mem := stats.Clip(l.foot*math.Pow(l.work, 0.5)+rng.Normal(0, 0.04), 0.02, 2)
		f := []float64{
			cpu,
			cpu * rng.Uniform(1.1, 1.7),
			mem,
			stats.Clip(mem*rng.Uniform(1.1, 1.6), 0.02, 3),
		}
		j.Tasks[i] = Task{ID: i, Start: start, Latency: lat, Features: f, TrueCause: l.cause}
	}
	capNearProfile(rng, j)
	return j
}

// capNearProfile enforces the Figure-1-right geometry on near-profile jobs:
// production tasks run under watchdog timeouts, so the worst latency stays
// within a small multiple of the p90 threshold (the paper's example job has
// p90 ~= 0.62 of max). Latencies above the cap are truncated to it.
func capNearProfile(rng *stats.RNG, j *Job) {
	if j.Profile != ProfileNear {
		return
	}
	lat := j.Latencies()
	p90 := stats.Quantile(lat, 0.9)
	cap := p90 * rng.Uniform(1.6, 1.9)
	for i := range j.Tasks {
		if j.Tasks[i].Latency > cap {
			j.Tasks[i].Latency = cap
		}
	}
}

// countEvents draws a small event count: Bernoulli(p) repeated up to max.
func countEvents(rng *stats.RNG, p float64, max int) int {
	n := 0
	for i := 0; i < max; i++ {
		if rng.Bernoulli(p) {
			n++
		}
	}
	return n
}

// ObsNoise is the per-checkpoint multiplicative measurement noise applied
// to every feature. Production monitoring windows (e.g. the Google traces'
// 5-minute usage snapshots) fluctuate considerably between checkpoints;
// this noise level reproduces the flag-set churn that drives the cumulative
// false-positive behaviour of threshold-based detectors in the paper.
const ObsNoise = 0.25

// ObservedFeatures returns the feature vector for task i as monitored at
// checkpoint t (an arbitrary integer tick). Observations are the latent
// feature vector under multiplicative noise, deterministic in
// (job, task, t).
func (j *Job) ObservedFeatures(i, t int) []float64 {
	base := j.Tasks[i].Features
	rng := stats.NewRNG(j.noiseSeed ^ uint64(i)*0x9e3779b97f4a7c15 ^ uint64(t)*0xbf58476d1ce4e5b9)
	out := make([]float64, len(base))
	for k, v := range base {
		out[k] = v * (1 + rng.Normal(0, ObsNoise))
	}
	return out
}
