package trace

import (
	"bytes"
	"strings"
	"testing"
)

func roundTrip(t *testing.T, j *Job) *Job {
	t.Helper()
	var buf bytes.Buffer
	if err := j.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestCSVRoundTrip(t *testing.T) {
	for _, cfg := range []GenConfig{DefaultGoogleConfig(3), DefaultAlibabaConfig(3)} {
		cfg := cfg
		t.Run(cfg.Mode.String(), func(t *testing.T) {
			gen, err := NewGenerator(cfg)
			if err != nil {
				t.Fatal(err)
			}
			j := gen.Next()
			got := roundTrip(t, j)
			if got.NumTasks() != j.NumTasks() {
				t.Fatalf("round-trip lost tasks: %d -> %d", j.NumTasks(), got.NumTasks())
			}
			if len(got.Schema) != len(j.Schema) {
				t.Fatalf("round-trip schema: %d -> %d columns", len(j.Schema), len(got.Schema))
			}
			for c := range j.Schema {
				if got.Schema[c] != j.Schema[c] {
					t.Errorf("schema[%d]: %q -> %q", c, j.Schema[c], got.Schema[c])
				}
			}
			causes := map[Cause]int{}
			for i := range j.Tasks {
				want, have := &j.Tasks[i], &got.Tasks[i]
				if have.ID != want.ID {
					t.Fatalf("task %d: ID %d", i, have.ID)
				}
				// 'g' with precision -1 is an exact float64 round-trip.
				if have.Start != want.Start || have.Latency != want.Latency {
					t.Errorf("task %d: start/latency %v/%v -> %v/%v",
						i, want.Start, want.Latency, have.Start, have.Latency)
				}
				if len(have.Features) != len(want.Features) {
					t.Fatalf("task %d: %d features -> %d", i, len(want.Features), len(have.Features))
				}
				for k := range want.Features {
					if have.Features[k] != want.Features[k] {
						t.Errorf("task %d feature %d: %v -> %v",
							i, k, want.Features[k], have.Features[k])
					}
				}
				if have.TrueCause != want.TrueCause {
					t.Errorf("task %d: cause %v -> %v", i, want.TrueCause, have.TrueCause)
				}
				causes[want.TrueCause]++
			}
			if len(causes) < 2 {
				t.Errorf("generated job exercises only causes %v; round-trip under-tested", causes)
			}
		})
	}
}

func TestParseCauseFallback(t *testing.T) {
	// Every cause label round-trips through its string form.
	for _, c := range []Cause{CauseNone, CauseSlowNode, CauseContention, CauseSkew} {
		if got := parseCause(c.String()); got != c {
			t.Errorf("parseCause(%q) = %v, want %v", c.String(), got, c)
		}
	}
	// Unknown strings (forward-compatible cause taxonomies, hand-edited
	// files) fall back to CauseNone rather than failing the load.
	for _, s := range []string{"", "unknown", "gpu-thermal", "NONE", "Slow-Node"} {
		if got := parseCause(s); got != CauseNone {
			t.Errorf("parseCause(%q) = %v, want CauseNone", s, got)
		}
	}
	// End to end: a CSV whose cause column holds an unknown label loads
	// with CauseNone.
	csv := "task_id,start,f1,latency,cause\n0,0,1.5,10,mystery-cause\n"
	j, err := ReadCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if j.Tasks[0].TrueCause != CauseNone {
		t.Errorf("unknown cause parsed as %v, want CauseNone", j.Tasks[0].TrueCause)
	}
}

func TestReadCSVRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad header":        "id,start,f1,latency,cause\n",
		"short header":      "task_id,start\n",
		"bad task id":       "task_id,start,f1,latency,cause\nx,0,1,10,none\n",
		"bad start":         "task_id,start,f1,latency,cause\n0,x,1,10,none\n",
		"bad feature":       "task_id,start,f1,latency,cause\n0,0,x,10,none\n",
		"bad latency":       "task_id,start,f1,latency,cause\n0,0,1,x,none\n",
		"ragged row length": "task_id,start,f1,latency,cause\n0,0,10,none\n",
	}
	for name, csv := range cases {
		if _, err := ReadCSV(strings.NewReader(csv)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}
