// Package trace models datacenter jobs, tasks, and their monitored features,
// and generates the synthetic Google-like and Alibaba-like workloads that
// stand in for the production traces evaluated in the paper (see DESIGN.md
// for the substitution rationale).
//
// A Job is a set of Tasks; each Task has a true final latency and a feature
// vector observed (with measurement noise) at monitoring checkpoints. A task
// whose latency is at or above the job's p90 latency is a straggler — the
// positive, minority class.
package trace

// GoogleFeatures is the 15-feature schema of the Google 2011 cluster traces
// (the paper's Table 1).
var GoogleFeatures = []string{
	"MCU",    // mean CPU usage
	"MAXCPU", // maximum CPU usage
	"SCPU",   // sampled CPU usage
	"CMU",    // canonical memory usage
	"AMU",    // assigned memory usage
	"MAXMU",  // maximum memory usage
	"UPC",    // unmapped page cache memory usage
	"TPC",    // total page cache memory usage
	"MIO",    // mean disk I/O time
	"MAXIO",  // maximum disk I/O time
	"MDK",    // mean local disk space used
	"CPI",    // cycles per instruction
	"MAI",    // memory accesses per instruction
	"EV",     // number of times task is evicted
	"FL",     // number of times task fails
}

// AlibabaFeatures is the 4-feature schema of the Alibaba traces (the
// paper's Table 2).
var AlibabaFeatures = []string{
	"cpu_avg", // average CPU numbers of instance running
	"cpu_max", // maximum CPU numbers of instance running
	"mem_avg", // average normalized memory of instance running
	"mem_max", // maximum normalized memory of instance running
}

// Index positions into GoogleFeatures, used by the generator.
const (
	gMCU = iota
	gMAXCPU
	gSCPU
	gCMU
	gAMU
	gMAXMU
	gUPC
	gTPC
	gMIO
	gMAXIO
	gMDK
	gCPI
	gMAI
	gEV
	gFL
)

// Cause labels why a task straggles; None marks ordinary tasks. Causes are
// ground-truth metadata used by the generator and tests, never exposed to
// predictors.
type Cause uint8

// Straggler causes modeled by the generator, following the taxonomy in the
// straggler-diagnosis literature (e.g. Hound, SIGMETRICS'18): slow/degraded
// machines, co-located resource contention, and input-data skew.
const (
	CauseNone Cause = iota
	CauseSlowNode
	CauseContention
	CauseSkew
)

// String returns the cause label.
func (c Cause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseSlowNode:
		return "slow-node"
	case CauseContention:
		return "contention"
	case CauseSkew:
		return "data-skew"
	default:
		return "unknown"
	}
}

// Task is one sub-computation of a Job.
type Task struct {
	// ID is the task's index within its job.
	ID int
	// Start is the wall-clock time the task was dispatched (production jobs
	// schedule tasks in waves, not all at once).
	Start float64
	// Latency is the true execution duration (revealed to learners only
	// once the task finishes); the task completes at Start+Latency.
	Latency float64
	// Features is the task's latent feature vector; observations add
	// per-checkpoint measurement noise via Job.ObservedFeatures.
	Features []float64
	// TrueCause is generator ground truth (diagnostics only).
	TrueCause Cause
}

// Job is a collection of tasks monitored together.
type Job struct {
	// ID identifies the job.
	ID uint64
	// Schema names the feature columns.
	Schema []string
	// Tasks holds the job's tasks, index == Task.ID.
	Tasks []Task
	// Profile records which generator regime produced the job.
	Profile Profile
	// noiseSeed drives per-checkpoint observation noise.
	noiseSeed uint64
}

// Profile identifies the latency-distribution regime of a job, matching the
// two shapes in the paper's Figure 1.
type Profile uint8

const (
	// ProfileFar: the p90 threshold sits below half the max latency
	// (Figure 1 left) — stragglers are far outliers, typically strongly
	// feature-shifted; the centroid ratio rho tends to be <= 1.
	ProfileFar Profile = iota
	// ProfileNear: the p90 threshold sits above half the max latency
	// (Figure 1 right) — latency spreads widely, stragglers look similar
	// to the bulk; rho tends to be > 1.
	ProfileNear
)

// String returns the profile label.
func (p Profile) String() string {
	if p == ProfileFar {
		return "far"
	}
	return "near"
}

// NumTasks returns the task count.
func (j *Job) NumTasks() int { return len(j.Tasks) }

// Latencies returns a copy of all true task latencies.
func (j *Job) Latencies() []float64 {
	out := make([]float64, len(j.Tasks))
	for i := range j.Tasks {
		out[i] = j.Tasks[i].Latency
	}
	return out
}

// Makespan returns the completion time of the last task (max Start+Latency).
func (j *Job) Makespan() float64 {
	m := 0.0
	for i := range j.Tasks {
		if e := j.Tasks[i].Start + j.Tasks[i].Latency; e > m {
			m = e
		}
	}
	return m
}
