package trace

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestGeneratorDeterministic(t *testing.T) {
	a, err := NewGenerator(DefaultGoogleConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewGenerator(DefaultGoogleConfig(42))
	ja, jb := a.Next(), b.Next()
	if ja.NumTasks() != jb.NumTasks() {
		t.Fatal("same seed, different task counts")
	}
	for i := range ja.Tasks {
		if ja.Tasks[i].Latency != jb.Tasks[i].Latency {
			t.Fatalf("task %d latency differs", i)
		}
		if ja.Tasks[i].Start != jb.Tasks[i].Start {
			t.Fatalf("task %d start differs", i)
		}
		for k := range ja.Tasks[i].Features {
			if ja.Tasks[i].Features[k] != jb.Tasks[i].Features[k] {
				t.Fatalf("task %d feature %d differs", i, k)
			}
		}
	}
}

func TestGeneratorTaskCountBounds(t *testing.T) {
	cfg := DefaultGoogleConfig(7)
	cfg.MinTasks, cfg.MaxTasks = 120, 150
	gen, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		n := gen.Next().NumTasks()
		if n < 120 || n > 150 {
			t.Fatalf("task count %d outside [120,150]", n)
		}
	}
}

func TestGoogleSchemaWidth(t *testing.T) {
	gen, _ := NewGenerator(DefaultGoogleConfig(1))
	job := gen.Next()
	if len(job.Schema) != 15 {
		t.Fatalf("google schema %d features, want 15", len(job.Schema))
	}
	for i := range job.Tasks {
		if len(job.Tasks[i].Features) != 15 {
			t.Fatalf("task %d has %d features", i, len(job.Tasks[i].Features))
		}
	}
}

func TestAlibabaSchemaWidth(t *testing.T) {
	gen, _ := NewGenerator(DefaultAlibabaConfig(1))
	job := gen.Next()
	if len(job.Schema) != 4 {
		t.Fatalf("alibaba schema %d features, want 4", len(job.Schema))
	}
	for i := range job.Tasks {
		if len(job.Tasks[i].Features) != 4 {
			t.Fatalf("task %d has %d features", i, len(job.Tasks[i].Features))
		}
	}
}

func TestLatenciesPositive(t *testing.T) {
	for _, cfg := range []GenConfig{DefaultGoogleConfig(3), DefaultAlibabaConfig(3)} {
		gen, _ := NewGenerator(cfg)
		for i := 0; i < 5; i++ {
			job := gen.Next()
			for _, task := range job.Tasks {
				if task.Latency <= 0 {
					t.Fatalf("non-positive latency %v", task.Latency)
				}
				if task.Start < 0 {
					t.Fatalf("negative start %v", task.Start)
				}
			}
		}
	}
}

func TestProfilesDifferInThresholdGeometry(t *testing.T) {
	// Far-profile jobs should mostly have p90 below half the max latency;
	// near-profile jobs mostly above (the paper's Figure 1 regimes).
	ratioOf := func(far float64, seed uint64) float64 {
		cfg := DefaultGoogleConfig(seed)
		cfg.FarFraction = far
		gen, _ := NewGenerator(cfg)
		hits, total := 0, 0
		for i := 0; i < 15; i++ {
			job := gen.Next()
			lat := job.Latencies()
			sort.Float64s(lat)
			p90 := lat[int(0.9*float64(len(lat)-1))]
			if p90 < 0.5*lat[len(lat)-1] {
				hits++
			}
			total++
		}
		return float64(hits) / float64(total)
	}
	farRatio := ratioOf(1, 11)
	nearRatio := ratioOf(0, 11)
	if farRatio < 0.8 {
		t.Fatalf("only %.0f%% of far jobs have p90 < max/2", farRatio*100)
	}
	if nearRatio > 0.4 {
		t.Fatalf("%.0f%% of near jobs have p90 < max/2, want mostly above", nearRatio*100)
	}
}

func TestStragglerFractionNearTenPercent(t *testing.T) {
	gen, _ := NewGenerator(DefaultGoogleConfig(13))
	totalCaused, totalTasks := 0, 0
	for i := 0; i < 20; i++ {
		job := gen.Next()
		for _, task := range job.Tasks {
			if task.TrueCause != CauseNone {
				totalCaused++
			}
			totalTasks++
		}
	}
	frac := float64(totalCaused) / float64(totalTasks)
	if frac < 0.07 || frac > 0.16 {
		t.Fatalf("cause fraction %v, want near 0.10-0.12", frac)
	}
}

func TestObservedFeaturesDeterministicAndNoisy(t *testing.T) {
	gen, _ := NewGenerator(DefaultGoogleConfig(17))
	job := gen.Next()
	a := job.ObservedFeatures(3, 5)
	b := job.ObservedFeatures(3, 5)
	for k := range a {
		if a[k] != b[k] {
			t.Fatal("observation not deterministic in (task, checkpoint)")
		}
	}
	c := job.ObservedFeatures(3, 6)
	same := true
	for k := range a {
		if a[k] != c[k] {
			same = false
		}
	}
	if same {
		t.Fatal("observations identical across checkpoints; noise missing")
	}
}

// CSV serialization coverage lives in serialize_test.go.

func TestGeneratorConfigValidation(t *testing.T) {
	bad := DefaultGoogleConfig(1)
	bad.MinTasks = 5
	if _, err := NewGenerator(bad); err == nil {
		t.Fatal("expected MinTasks error")
	}
	bad = DefaultGoogleConfig(1)
	bad.MaxTasks = bad.MinTasks - 1
	if _, err := NewGenerator(bad); err == nil {
		t.Fatal("expected MaxTasks error")
	}
	bad = DefaultGoogleConfig(1)
	bad.FarFraction = 1.5
	if _, err := NewGenerator(bad); err == nil {
		t.Fatal("expected FarFraction error")
	}
}

func TestMakespanAtLeastMaxLatency(t *testing.T) {
	gen, _ := NewGenerator(DefaultGoogleConfig(23))
	job := gen.Next()
	maxLat := 0.0
	for _, task := range job.Tasks {
		if task.Latency > maxLat {
			maxLat = task.Latency
		}
	}
	if job.Makespan() < maxLat {
		t.Fatalf("makespan %v below max latency %v", job.Makespan(), maxLat)
	}
}

func TestCauseStrings(t *testing.T) {
	want := map[Cause]string{
		CauseNone: "none", CauseSlowNode: "slow-node",
		CauseContention: "contention", CauseSkew: "data-skew",
	}
	for c, s := range want {
		if c.String() != s {
			t.Fatalf("cause %d string %q, want %q", c, c.String(), s)
		}
		if parseCause(s) != c {
			t.Fatalf("parseCause(%q) != %v", s, c)
		}
	}
}

func TestFeaturesNonNegativeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := DefaultGoogleConfig(seed)
		cfg.MinTasks, cfg.MaxTasks = 50, 60
		cfg.MinTasks = 50
		gen, err := NewGenerator(cfg)
		if err != nil {
			return false
		}
		job := gen.Next()
		for _, task := range job.Tasks {
			for _, v := range task.Features {
				if v < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
