package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV serializes a job: header (task_id, features..., latency, cause),
// one row per task.
func (j *Job) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"task_id", "start"}, j.Schema...)
	header = append(header, "latency", "cause")
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, 0, len(header))
	for i := range j.Tasks {
		t := &j.Tasks[i]
		rec = rec[:0]
		rec = append(rec, strconv.Itoa(t.ID), strconv.FormatFloat(t.Start, 'g', -1, 64))
		for _, v := range t.Features {
			rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
		}
		rec = append(rec, strconv.FormatFloat(t.Latency, 'g', -1, 64), t.TrueCause.String())
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a job written by WriteCSV.
func ReadCSV(r io.Reader) (*Job, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if len(header) < 5 || header[0] != "task_id" || header[1] != "start" ||
		header[len(header)-2] != "latency" || header[len(header)-1] != "cause" {
		return nil, fmt.Errorf("trace: unexpected header %v", header)
	}
	schema := append([]string(nil), header[2:len(header)-2]...)
	j := &Job{Schema: schema, noiseSeed: 1}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: reading row: %w", err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("trace: row has %d fields, want %d", len(rec), len(header))
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("trace: parsing task_id %q: %w", rec[0], err)
		}
		start, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: parsing start %q: %w", rec[1], err)
		}
		feats := make([]float64, len(schema))
		for k := range schema {
			v, err := strconv.ParseFloat(rec[2+k], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: parsing feature %q: %w", rec[2+k], err)
			}
			feats[k] = v
		}
		lat, err := strconv.ParseFloat(rec[len(rec)-2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: parsing latency %q: %w", rec[len(rec)-2], err)
		}
		j.Tasks = append(j.Tasks, Task{
			ID:        id,
			Start:     start,
			Latency:   lat,
			Features:  feats,
			TrueCause: parseCause(rec[len(rec)-1]),
		})
	}
	return j, nil
}

func parseCause(s string) Cause {
	switch s {
	case "slow-node":
		return CauseSlowNode
	case "contention":
		return CauseContention
	case "data-skew":
		return CauseSkew
	default:
		return CauseNone
	}
}
