package predictor

import (
	"strings"
	"testing"

	"repro/internal/simulator"
	"repro/internal/trace"
)

func testSim(t *testing.T, seed uint64) *simulator.Sim {
	t.Helper()
	cfg := trace.DefaultGoogleConfig(seed)
	cfg.MinTasks, cfg.MaxTasks = 120, 160
	gen, err := trace.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := simulator.New(gen.Next(), simulator.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestAllFactoriesCoverTable3(t *testing.T) {
	fs := AllFactories()
	if len(fs) != 23 {
		t.Fatalf("%d factories, want 23 (Table 3 rows)", len(fs))
	}
	want := []string{"GBTR", "ABOD", "CBLOF", "HBOS", "IFOREST", "KNN", "LOF",
		"MCD", "OCSVM", "PCA", "SOS", "LSCP", "COF", "SOD", "XGBOD",
		"PU-EN", "PU-BG", "Tobit", "Grabit", "CoxPH", "Wrangler", "NURD-NC", "NURD"}
	for i, f := range fs {
		if f.Name != want[i] {
			t.Fatalf("factory %d is %q, want %q", i, f.Name, want[i])
		}
	}
}

func TestEveryPredictorRunsCleanly(t *testing.T) {
	sim := testSim(t, 5)
	for _, f := range AllFactories() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			p := f.New(sim, 7)
			if p.Name() != f.Name {
				t.Fatalf("predictor name %q != factory name %q", p.Name(), f.Name)
			}
			res, err := simulator.Evaluate(sim, p)
			if err != nil {
				t.Fatal(err)
			}
			total := res.Final.TP + res.Final.FP + res.Final.TN + res.Final.FN
			if total != sim.Job.NumTasks() {
				t.Fatalf("confusion covers %d of %d tasks", total, sim.Job.NumTasks())
			}
		})
	}
}

func TestPredictorsHandleVerdictShape(t *testing.T) {
	sim := testSim(t, 6)
	cp := sim.At(3, nil)
	for _, f := range AllFactories() {
		p := f.New(sim, 11)
		p.Reset()
		out, err := p.Predict(cp)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if len(out) != len(cp.RunningIDs) {
			t.Fatalf("%s: %d verdicts for %d running tasks", f.Name, len(out), len(cp.RunningIDs))
		}
	}
}

func TestNURDGateDefersEarly(t *testing.T) {
	sim := testSim(t, 7)
	p := NewNURD(3)
	p.Reset()
	// Build a synthetic checkpoint with almost nothing finished: the gate
	// must defer (all-false) rather than predict from a starved model.
	full := sim.At(3, nil)
	if len(full.FinishedX) < 5 || len(full.RunningX) < 20 {
		t.Skip("checkpoint shape unsuitable for this construction")
	}
	cp := &simulator.Checkpoint{
		Index: 1, Norm: 0.1,
		TauRun: full.TauRun, TauStra: full.TauStra,
		StragglerQuantile: 0.9,
		FinishedIDs:       full.FinishedIDs[:2],
		FinishedX:         full.FinishedX[:2],
		FinishedY:         full.FinishedY[:2],
		RunningIDs:        full.RunningIDs,
		RunningX:          full.RunningX,
		RunningElapsed:    full.RunningElapsed,
	}
	out, err := p.Predict(cp)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if v {
			t.Fatal("gated NURD must not flag while starved")
		}
	}
}

func TestNURDBeatsNaiveBaselines(t *testing.T) {
	// On a far-profile job NURD should clearly outperform GBTR and the
	// generic LOF detector in F1 — the paper's headline behaviour.
	cfg := trace.DefaultGoogleConfig(21)
	cfg.FarFraction = 1
	cfg.MinTasks, cfg.MaxTasks = 250, 250
	gen, err := trace.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := simulator.New(gen.Next(), simulator.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f1 := func(p simulator.Predictor) float64 {
		res, err := simulator.Evaluate(sim, p)
		if err != nil {
			t.Fatal(err)
		}
		return res.Final.F1()
	}
	nurdF1 := f1(NewNURD(1))
	gbtrF1 := f1(NewGBTR(1))
	lofF1 := f1(NewOutlier("LOF", 0.1, 1))
	if nurdF1 <= gbtrF1 {
		t.Fatalf("NURD %v <= GBTR %v", nurdF1, gbtrF1)
	}
	if nurdF1 <= lofF1 {
		t.Fatalf("NURD %v <= LOF %v", nurdF1, lofF1)
	}
	if nurdF1 < 0.6 {
		t.Fatalf("NURD F1 %v unexpectedly low on a far-profile job", nurdF1)
	}
}

func TestNURDNCHasHigherFPR(t *testing.T) {
	// Across a few jobs, removing calibration should not reduce FPR — the
	// ablation the paper reports.
	gen, err := trace.NewGenerator(trace.DefaultGoogleConfig(23))
	if err != nil {
		t.Fatal(err)
	}
	var fprNURD, fprNC float64
	for i := 0; i < 4; i++ {
		sim, err := simulator.New(gen.Next(), simulator.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		rn, err := simulator.Evaluate(sim, NewNURD(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		rc, err := simulator.Evaluate(sim, NewNURDNC(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		fprNURD += rn.Final.FPR()
		fprNC += rc.Final.FPR()
	}
	if fprNC < fprNURD-1e-9 {
		t.Fatalf("calibration should not raise FPR: NURD %v vs NC %v", fprNURD/4, fprNC/4)
	}
}

func TestUnknownDetectorName(t *testing.T) {
	p := NewOutlier("NOPE", 0.1, 1)
	sim := testSim(t, 9)
	cp := sim.At(3, nil)
	if _, err := p.Predict(cp); err == nil || !strings.Contains(err.Error(), "unknown detector") {
		t.Fatalf("expected unknown-detector error, got %v", err)
	}
}

func TestOutlierNamesMatchFactories(t *testing.T) {
	names := OutlierNames()
	if len(names) != 14 {
		t.Fatalf("%d outlier names, want 14", len(names))
	}
	for _, n := range names {
		if _, err := newDetector(n, 1); err != nil {
			t.Fatalf("detector %q: %v", n, err)
		}
	}
}

func TestWranglerTrainsOnce(t *testing.T) {
	sim := testSim(t, 10)
	w := NewWrangler(sim, 3)
	res, err := simulator.Evaluate(sim, w)
	if err != nil {
		t.Fatal(err)
	}
	// Oracle-assisted offline training: expect reasonable recall.
	if res.Final.TPR() < 0.3 {
		t.Fatalf("wrangler TPR %v suspiciously low for an oracle-assisted baseline", res.Final.TPR())
	}
}
