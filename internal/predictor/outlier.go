package predictor

import (
	"fmt"

	"repro/internal/outlier"
	"repro/internal/simulator"
)

// OutlierNames lists the fourteen detectors in Table 3 order.
func OutlierNames() []string {
	return []string{
		"ABOD", "CBLOF", "HBOS", "IFOREST", "KNN", "LOF", "MCD",
		"OCSVM", "PCA", "SOS", "LSCP", "COF", "SOD", "XGBOD",
	}
}

// newDetector constructs a fresh detector by Table 3 name.
func newDetector(name string, seed uint64) (outlier.Detector, error) {
	switch name {
	case "ABOD":
		return outlier.NewABOD(10), nil
	case "CBLOF":
		return outlier.NewCBLOF(8, 0.9, 5, seed), nil
	case "HBOS":
		return outlier.NewHBOS(10), nil
	case "IFOREST":
		return outlier.NewIForest(100, 256, seed), nil
	case "KNN":
		return outlier.NewKNN(5), nil
	case "LOF":
		return outlier.NewLOF(10), nil
	case "MCD":
		return outlier.NewMCD(0.75, seed), nil
	case "OCSVM":
		return outlier.NewOCSVM(0.1, 30, seed), nil
	case "PCA":
		return outlier.NewPCA(0.9), nil
	case "SOS":
		return outlier.NewSOS(4.5), nil
	case "LSCP":
		return outlier.NewLSCP([]int{5, 10, 15, 20}, 10, seed), nil
	case "COF":
		return outlier.NewCOF(10), nil
	case "SOD":
		return outlier.NewSOD(10, 8, 0.8), nil
	case "XGBOD":
		return outlier.NewXGBOD(seed), nil
	default:
		return nil, fmt.Errorf("predictor: unknown detector %q", name)
	}
}

// OutlierPredictor runs one unsupervised detector under the protocol of the
// paper's comparison: at each checkpoint the detector is fit on every
// observed feature vector (finished + running) and a running task is
// flagged when its score exceeds the (1-contamination) quantile of the
// training scores.
type OutlierPredictor struct {
	name          string
	contamination float64
	seed          uint64
}

// NewOutlier constructs the adapter for the named detector.
func NewOutlier(name string, contamination float64, seed uint64) *OutlierPredictor {
	if contamination <= 0 || contamination >= 1 {
		contamination = 0.1
	}
	return &OutlierPredictor{name: name, contamination: contamination, seed: seed}
}

// Name implements simulator.Predictor.
func (p *OutlierPredictor) Name() string { return p.name }

// Reset implements simulator.Predictor.
func (p *OutlierPredictor) Reset() {}

// Predict implements simulator.Predictor.
func (p *OutlierPredictor) Predict(cp *simulator.Checkpoint) ([]bool, error) {
	n := len(cp.FinishedX) + len(cp.RunningX)
	if n < 10 || len(cp.RunningX) == 0 {
		return make([]bool, len(cp.RunningIDs)), nil
	}
	det, err := newDetector(p.name, p.seed+uint64(cp.Index)*7919)
	if err != nil {
		return nil, err
	}
	X := make([][]float64, 0, n)
	X = append(X, cp.FinishedX...)
	X = append(X, cp.RunningX...)
	if xb, ok := det.(*outlier.XGBOD); ok {
		// XGBOD's meta-learner uses the only label signal legally available
		// online: finished (0) vs running (1).
		y := make([]float64, n)
		for i := len(cp.FinishedX); i < n; i++ {
			y[i] = 1
		}
		xb.SetLabels(y)
	}
	if err := det.Fit(X); err != nil {
		return nil, fmt.Errorf("%s: %w", p.name, err)
	}
	trainScores := det.Scores(X)
	thr := outlier.Threshold(trainScores, p.contamination)
	runScores := trainScores[len(cp.FinishedX):]
	out := make([]bool, len(cp.RunningX))
	for i, s := range runScores {
		out[i] = s > thr
	}
	return out, nil
}
