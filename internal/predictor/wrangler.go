package predictor

import (
	"fmt"

	"repro/internal/linmodel"
	"repro/internal/simulator"
	"repro/internal/stats"
)

// Wrangler reproduces the Yadwadkar et al. (2014) baseline under the
// advantage the paper grants it (§6): unlike every other method, Wrangler is
// allowed an offline training sample containing true straggler labels — 2/3
// of each class — with stragglers oversampled to balance the classes, fed to
// a linear SVM. At each checkpoint it simply classifies the running tasks.
type Wrangler struct {
	seed uint64
	sim  *simulator.Sim
	svm  *linmodel.SVM
}

// NewWrangler constructs the oracle-assisted baseline for one job replay.
func NewWrangler(s *simulator.Sim, seed uint64) *Wrangler {
	return &Wrangler{seed: seed, sim: s}
}

// Name implements simulator.Predictor.
func (p *Wrangler) Name() string { return "Wrangler" }

// Reset implements simulator.Predictor.
func (p *Wrangler) Reset() { p.svm = nil }

// train builds the offline oversampled training set and fits the SVM.
func (p *Wrangler) train() error {
	job := p.sim.Job
	truth := p.sim.Truth()
	rng := stats.NewRNG(p.seed ^ 0x37a)
	var posIdx, negIdx []int
	for i, t := range truth {
		if t {
			posIdx = append(posIdx, i)
		} else {
			negIdx = append(negIdx, i)
		}
	}
	if len(posIdx) == 0 || len(negIdx) == 0 {
		return fmt.Errorf("wrangler: job %d has a degenerate class split (%d/%d)",
			job.ID, len(posIdx), len(negIdx))
	}
	take := func(idx []int) []int {
		k := (2*len(idx) + 2) / 3
		if k < 1 {
			k = 1
		}
		sel := rng.Sample(len(idx), k)
		out := make([]int, k)
		for i, s := range sel {
			out[i] = idx[s]
		}
		return out
	}
	pos := take(posIdx)
	neg := take(negIdx)
	var X [][]float64
	var y []float64
	for _, i := range neg {
		X = append(X, job.ObservedFeatures(i, 0))
		y = append(y, 0)
	}
	// Oversample stragglers with replacement past parity (1.5x the
	// negatives), reproducing the recall-over-precision bias the paper
	// observes in Wrangler's oversampling.
	for len(X) < len(neg)+3*len(neg)/2 {
		i := pos[rng.Intn(len(pos))]
		X = append(X, job.ObservedFeatures(i, 0))
		y = append(y, 1)
	}
	cfg := linmodel.DefaultSVMConfig()
	cfg.Seed = p.seed
	svm, err := linmodel.FitSVM(X, y, cfg)
	if err != nil {
		return fmt.Errorf("wrangler: %w", err)
	}
	p.svm = svm
	return nil
}

// Predict implements simulator.Predictor.
func (p *Wrangler) Predict(cp *simulator.Checkpoint) ([]bool, error) {
	if p.svm == nil {
		if err := p.train(); err != nil {
			return nil, err
		}
	}
	out := make([]bool, len(cp.RunningX))
	for i, x := range cp.RunningX {
		out[i] = p.svm.Predict(x) == 1
	}
	return out, nil
}
