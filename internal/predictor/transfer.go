package predictor

import (
	"repro/internal/nurd"
	"repro/internal/simulator"
	"repro/internal/stats"
	"repro/internal/vecmath"
)

// TransferNURD is the paper's §8 transfer-learning extension wired into the
// online protocol. It behaves exactly like NURD once the current job has
// enough finished tasks; during the cold-start window (where plain NURD
// defers) it borrows the most feature-similar archived job's models from a
// shared TransferStore, rescaling latency predictions by the ratio of early
// median latencies. When a replay ends (the next Reset), the fitted models
// are archived for future jobs.
type TransferNURD struct {
	*NURDPredictor
	store *nurd.TransferStore
	// job signature accumulated during the current replay.
	centroid []float64
	scale    float64
}

// NewNURDTransfer wraps NURD with the shared archive. All TransferNURD
// instances sharing one store learn from each other's jobs.
func NewNURDTransfer(store *nurd.TransferStore, seed uint64) *TransferNURD {
	base := NewNURD(seed)
	base.name = "NURD-TL"
	return &TransferNURD{NURDPredictor: base, store: store}
}

// Name implements simulator.Predictor.
func (p *TransferNURD) Name() string { return p.name }

// Reset implements simulator.Predictor: the previous job's fitted models
// are archived before state clears.
func (p *TransferNURD) Reset() {
	if p.model != nil && p.centroid != nil && p.scale > 0 {
		p.store.Archive(p.model, p.centroid, p.scale)
	}
	p.centroid = nil
	p.scale = 0
	p.NURDPredictor.Reset()
}

// Predict implements simulator.Predictor.
func (p *TransferNURD) Predict(cp *simulator.Checkpoint) ([]bool, error) {
	// Track the job signature from the richest checkpoint seen so far.
	all := make([][]float64, 0, len(cp.FinishedX)+len(cp.RunningX))
	all = append(all, cp.FinishedX...)
	all = append(all, cp.RunningX...)
	if len(all) > 0 {
		p.centroid = vecmath.Centroid(all)
	}
	if len(cp.FinishedY) > 0 && p.scale == 0 {
		p.scale = stats.Median(cp.FinishedY)
	}

	// Cold-start window: plain NURD would defer; borrow an archived model.
	total := len(cp.FinishedX) + len(cp.RunningX)
	starved := len(cp.FinishedX) == 0 ||
		(p.cfg.MinFinishedFrac > 0 &&
			float64(len(cp.FinishedX)) < p.cfg.MinFinishedFrac*float64(total))
	if starved && p.scale > 0 && p.centroid != nil {
		if src, rescale, ok := p.store.Nearest(p.centroid, p.scale); ok {
			return p.transferVerdicts(cp, src, rescale)
		}
	}
	return p.NURDPredictor.Predict(cp)
}

// transferVerdicts applies an archived model to the running set, under the
// same annealed bar as the native path but with a stricter margin (the
// transferred model is an approximation, so only clear verdicts fire).
func (p *TransferNURD) transferVerdicts(cp *simulator.Checkpoint, src *nurd.Model, rescale float64) ([]bool, error) {
	anneal := 1.0
	if cp.TauStra > 0 && cp.TauRun < cp.TauStra {
		anneal = 1 + annealKappa*(1-cp.TauRun/cp.TauStra)
	}
	// Transferred verdicts carry cross-job uncertainty: raise the bar by an
	// extra factor.
	bar := cp.TauStra * anneal * transferMargin
	out := make([]bool, len(cp.RunningX))
	for i, x := range cp.RunningX {
		pr, err := nurd.TransferPredict(src, rescale, x)
		if err != nil {
			return nil, err
		}
		out[i] = pr.Adjusted >= bar
	}
	return out, nil
}

// transferMargin is the extra decision margin applied to transferred
// (cross-job) predictions.
const transferMargin = 1.5
