// Package predictor adapts every method in the paper's Table 3 to the
// online protocol of package simulator: NURD and NURD-NC (package nurd), the
// supervised GBTR baseline, the fourteen outlier detectors, the two PU
// learners, the three censored/survival regressors, and Wrangler.
//
// Each adapter is stateful per job; the harness constructs a fresh instance
// per (job, method) pair through Factory.New.
package predictor

import (
	"fmt"

	"repro/internal/gbt"
	"repro/internal/nurd"
	"repro/internal/simulator"
)

// Factory constructs a predictor for one job replay. Oracle-assisted
// methods (Wrangler) inspect the Sim; honest online methods ignore it.
type Factory struct {
	// Name is the method label (Table 3 row).
	Name string
	// New builds a fresh predictor for the given job replay.
	New func(s *simulator.Sim, seed uint64) simulator.Predictor
}

// AllFactories returns every method in the paper's Table 3, in table order.
func AllFactories() []Factory {
	fs := []Factory{
		{Name: "GBTR", New: func(_ *simulator.Sim, seed uint64) simulator.Predictor {
			return NewGBTR(seed)
		}},
	}
	for _, name := range OutlierNames() {
		name := name
		fs = append(fs, Factory{Name: name, New: func(_ *simulator.Sim, seed uint64) simulator.Predictor {
			return NewOutlier(name, 0.1, seed)
		}})
	}
	fs = append(fs,
		Factory{Name: "PU-EN", New: func(_ *simulator.Sim, seed uint64) simulator.Predictor {
			return NewPUEN(seed)
		}},
		Factory{Name: "PU-BG", New: func(_ *simulator.Sim, seed uint64) simulator.Predictor {
			return NewPUBG(seed)
		}},
		Factory{Name: "Tobit", New: func(_ *simulator.Sim, seed uint64) simulator.Predictor {
			return NewTobit()
		}},
		Factory{Name: "Grabit", New: func(_ *simulator.Sim, seed uint64) simulator.Predictor {
			return NewGrabit(seed)
		}},
		Factory{Name: "CoxPH", New: func(_ *simulator.Sim, seed uint64) simulator.Predictor {
			return NewCoxPH()
		}},
		Factory{Name: "Wrangler", New: func(s *simulator.Sim, seed uint64) simulator.Predictor {
			return NewWrangler(s, seed)
		}},
		Factory{Name: "NURD-NC", New: func(s *simulator.Sim, seed uint64) simulator.Predictor {
			p := NewNURDNC(seed)
			p.confirm = confirmFor(s)
			return p
		}},
		Factory{Name: "NURD", New: func(s *simulator.Sim, seed uint64) simulator.Predictor {
			p := NewNURD(seed)
			p.confirm = confirmFor(s)
			return p
		}},
	)
	return fs
}

// FindFactory returns the index and factory of the named Table 3 method
// within AllFactories. The index matters beyond lookup: experiments.Run
// derives each (job, method) seed from the method's position in the factory
// list, so callers that replay a single method outside Run (cmd/nurdserve,
// the serving tests) need the same index to reproduce identical predictors.
func FindFactory(name string) (int, Factory, bool) {
	for i, f := range AllFactories() {
		if f.Name == name {
			return i, f, true
		}
	}
	return -1, Factory{}, false
}

// ConfirmFor exposes the per-dataset confirmation requirement used by the
// NURD factories (see confirmFor); the serving layer uses it to build
// predictors equivalent to AllFactories' without a Sim in hand.
func ConfirmFor(schema []string) int {
	if len(schema) <= 4 {
		return 1
	}
	return 2
}

// confirmFor selects the confirmation requirement per dataset, mirroring
// the paper's per-dataset hyperparameter tuning (§6): with the 15-feature
// Google schema the models are sharp enough that borderline verdicts are
// worth double-checking (confirm = 2 suppresses measurement-noise false
// positives); with the 4-feature Alibaba schema verdicts sharpen only as
// the job progresses and waiting a checkpoint forfeits most of the
// mitigation benefit, so flags fire on first crossing (confirm = 1).
func confirmFor(s *simulator.Sim) int {
	if s == nil {
		return 2
	}
	return ConfirmFor(s.Job.Schema)
}

// NURDPredictor adapts nurd.Model to the online protocol. Because the
// monitored features carry per-checkpoint measurement noise, a termination
// (irreversible under the protocol) requires Confirm consecutive positive
// verdicts; stragglers stay positive across checkpoints while noise-driven
// borderline positives flicker and are suppressed.
type NURDPredictor struct {
	cfg     nurd.Config
	seed    uint64
	model   *nurd.Model
	name    string
	confirm int
	// streak counts consecutive positive verdicts per task ID.
	streak map[int]int
	// flagged counts terminations issued so far (for the flag budget).
	flagged int
	// scratch holds PredictBatch's reusable buffers; a predictor is driven
	// by one goroutine at a time (the simulator loop or a refit worker), so
	// unsynchronized reuse is safe.
	scratch nurd.PredictScratch
}

// NewNURD returns the full method with calibration.
func NewNURD(seed uint64) *NURDPredictor {
	cfg := nurd.DefaultConfig()
	cfg.Seed = seed
	return &NURDPredictor{cfg: cfg, seed: seed, name: "NURD", confirm: 2}
}

// NewNURDNC returns the no-calibration ablation (w = z).
func NewNURDNC(seed uint64) *NURDPredictor {
	cfg := nurd.DefaultConfig()
	cfg.Calibrate = false
	cfg.Seed = seed
	return &NURDPredictor{cfg: cfg, seed: seed, name: "NURD-NC", confirm: 2}
}

// NewNURDWith returns an adapter with a custom configuration (ablations).
// confirm is the consecutive-positive count required to terminate (1 =
// immediate, the literal Algorithm 1).
func NewNURDWith(name string, cfg nurd.Config, confirm int) *NURDPredictor {
	if confirm < 1 {
		confirm = 1
	}
	return &NURDPredictor{cfg: cfg, seed: cfg.Seed, name: name, confirm: confirm}
}

// Name implements simulator.Predictor.
func (p *NURDPredictor) Name() string { return p.name }

// Reset implements simulator.Predictor.
func (p *NURDPredictor) Reset() {
	p.model = nil
	p.streak = nil
	p.flagged = 0
}

// Model exposes the underlying nurd.Model after the first checkpoint
// (diagnostics and tests).
func (p *NURDPredictor) Model() *nurd.Model { return p.model }

// RefitCounts reports how many of this predictor's refits warm-started the
// latency model vs fitted it from scratch (zero before the first gated
// checkpoint). The serving layer's refit pipeline reads it for /stats.
func (p *NURDPredictor) RefitCounts() (warm, scratch uint64) {
	if p.model == nil {
		return 0, 0
	}
	return p.model.RefitCounts()
}

// Predict implements simulator.Predictor.
func (p *NURDPredictor) Predict(cp *simulator.Checkpoint) ([]bool, error) {
	if len(cp.FinishedX) == 0 {
		return make([]bool, len(cp.RunningIDs)), nil
	}
	// Defer until the training set can support the two models.
	total := len(cp.FinishedX) + len(cp.RunningX)
	if p.cfg.MinFinishedFrac > 0 &&
		float64(len(cp.FinishedX)) < p.cfg.MinFinishedFrac*float64(total) {
		return make([]bool, len(cp.RunningIDs)), nil
	}
	if p.model == nil {
		p.model = nurd.New(p.cfg)
		if err := p.model.Init(cp.FinishedX, cp.RunningX); err != nil {
			return nil, err
		}
	}
	// Refit dispatches on the configuration: the scratch path (WarmRounds 0)
	// is bit-identical to the historical Update call, while warm
	// configurations extend the previous checkpoint's ensemble.
	if err := p.model.Refit(cp.FinishedX, cp.FinishedY, cp.RunningX); err != nil {
		return nil, err
	}
	if p.streak == nil {
		p.streak = make(map[int]int)
	}
	// Annealed decision threshold: early in the job the only hard fact
	// about a running task is latency >= tau_run, far below tau_stra, so a
	// positive verdict is a long extrapolation and the bar is raised; as
	// tau_run approaches tau_stra the bar anneals down to the paper's
	// literal test (adjusted >= tau_stra).
	anneal := 1.0
	if cp.TauStra > 0 && cp.TauRun < cp.TauStra {
		anneal = 1 + annealKappa*(1-cp.TauRun/cp.TauStra)
	}
	bar := cp.TauStra * anneal
	type cand struct {
		idx    int
		margin float64
	}
	var cands []cand
	// One task-major pass through the compiled flat ensemble, bit-identical
	// to per-row Predict; the scratch buffers persist across checkpoints.
	preds, err := p.model.PredictBatch(cp.RunningX, &p.scratch)
	if err != nil {
		return nil, err
	}
	for i := range cp.RunningX {
		pr := preds[i]
		id := cp.RunningIDs[i]
		switch {
		case pr.Adjusted >= strongMargin*bar:
			// Far over the bar: candidate immediately.
			cands = append(cands, cand{i, pr.Adjusted / bar})
		case pr.Adjusted >= bar:
			// Borderline: require consecutive confirmation so measurement
			// noise cannot trigger an irreversible termination.
			p.streak[id]++
			if p.streak[id] >= p.confirm {
				cands = append(cands, cand{i, pr.Adjusted / bar})
			}
		default:
			p.streak[id] = 0
		}
	}
	out := make([]bool, len(cp.RunningX))
	for _, c := range cands {
		out[c.idx] = true
		p.flagged++
	}
	return out, nil
}

// annealKappa controls how much the decision bar is raised while the
// censoring horizon is still far below tau_stra.
const annealKappa = 1.0

// strongMargin is the adjusted-latency multiple of the annealed bar above
// which a verdict skips confirmation.
const strongMargin = 1.3

// GBTR is the supervised baseline: gradient-boosted regression fit on
// finished tasks only, with no reweighting; a running task is flagged when
// its raw latency prediction crosses tau_stra.
type GBTR struct {
	seed uint64
}

// NewGBTR constructs the baseline.
func NewGBTR(seed uint64) *GBTR { return &GBTR{seed: seed} }

// Name implements simulator.Predictor.
func (p *GBTR) Name() string { return "GBTR" }

// Reset implements simulator.Predictor.
func (p *GBTR) Reset() {}

// Predict implements simulator.Predictor.
func (p *GBTR) Predict(cp *simulator.Checkpoint) ([]bool, error) {
	if len(cp.FinishedX) == 0 {
		return make([]bool, len(cp.RunningIDs)), nil
	}
	cfg := gbt.DefaultConfig()
	cfg.Seed = p.seed
	m, err := gbt.FitRegressor(cp.FinishedX, cp.FinishedY, cfg)
	if err != nil {
		return nil, fmt.Errorf("gbtr: %w", err)
	}
	out := make([]bool, len(cp.RunningX))
	for i, lat := range m.Compile().PredictBatch(cp.RunningX) {
		out[i] = lat >= cp.TauStra
	}
	return out, nil
}
