package predictor

import (
	"testing"

	"repro/internal/nurd"
	"repro/internal/simulator"
	"repro/internal/trace"
)

// streamSims builds a stream of similar jobs (same generator).
func streamSims(t *testing.T, n int, seed uint64) []*simulator.Sim {
	t.Helper()
	cfg := trace.DefaultGoogleConfig(seed)
	cfg.FarFraction = 1 // similar bimodal jobs: the transfer-friendly case
	cfg.MinTasks, cfg.MaxTasks = 150, 200
	gen, err := trace.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sims := make([]*simulator.Sim, n)
	for i := range sims {
		sim, err := simulator.New(gen.Next(), simulator.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		sims[i] = sim
	}
	return sims
}

func TestTransferNURDRunsAndArchives(t *testing.T) {
	store := nurd.NewTransferStore()
	p := NewNURDTransfer(store, 7)
	sims := streamSims(t, 3, 31)
	for i, sim := range sims {
		res, err := simulator.Evaluate(sim, p)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		total := res.Final.TP + res.Final.FP + res.Final.TN + res.Final.FN
		if total != sim.Job.NumTasks() {
			t.Fatalf("job %d: confusion covers %d of %d", i, total, sim.Job.NumTasks())
		}
	}
	// Evaluate calls Reset at the start of each replay, so after three jobs
	// at least the first two are archived.
	if store.Len() < 2 {
		t.Fatalf("archive holds %d jobs, want >= 2", store.Len())
	}
	if p.Name() != "NURD-TL" {
		t.Fatalf("name %q", p.Name())
	}
}

func TestTransferNURDNoWorseThanPlain(t *testing.T) {
	// Across a stream of similar jobs, transfer fills the cold-start window
	// and must not hurt aggregate accuracy.
	sims := streamSims(t, 5, 37)
	store := nurd.NewTransferStore()
	tl := NewNURDTransfer(store, 3)
	var plainF1, tlF1 float64
	for i, sim := range sims {
		rp, err := simulator.Evaluate(sim, NewNURD(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		rt, err := simulator.Evaluate(sim, tl)
		if err != nil {
			t.Fatal(err)
		}
		plainF1 += rp.Final.F1()
		tlF1 += rt.Final.F1()
	}
	if tlF1 < plainF1-0.5 {
		t.Fatalf("transfer severely degraded accuracy: %.2f vs %.2f (sum over 5 jobs)",
			tlF1, plainF1)
	}
}

func TestTransferNURDColdStartUsesArchive(t *testing.T) {
	// Seed the archive with a fitted job, then present a checkpoint in the
	// cold-start window: unlike plain NURD (which defers everything), the
	// transfer predictor may flag strong candidates. At minimum it must not
	// error and must return the right shape.
	sims := streamSims(t, 2, 41)
	store := nurd.NewTransferStore()
	tl := NewNURDTransfer(store, 5)
	if _, err := simulator.Evaluate(sims[0], tl); err != nil {
		t.Fatal(err)
	}
	tl.Reset() // archives job 0
	if store.Len() == 0 {
		t.Fatal("archive empty after first job")
	}
	cp := sims[1].At(1, nil)
	if len(cp.RunningIDs) == 0 {
		t.Skip("first checkpoint has no running tasks")
	}
	out, err := tl.Predict(cp)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(cp.RunningIDs) {
		t.Fatalf("%d verdicts for %d running", len(out), len(cp.RunningIDs))
	}
}
