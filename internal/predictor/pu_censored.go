package predictor

import (
	"fmt"

	"repro/internal/censored"
	"repro/internal/gbt"
	"repro/internal/pu"
	"repro/internal/simulator"
)

// PUEN adapts the Elkan–Noto PU learner: labeled = finished tasks,
// unlabeled = running tasks; a running task is flagged when the corrected
// straggler probability reaches 0.5.
type PUEN struct {
	seed uint64
}

// NewPUEN constructs the adapter.
func NewPUEN(seed uint64) *PUEN { return &PUEN{seed: seed} }

// Name implements simulator.Predictor.
func (p *PUEN) Name() string { return "PU-EN" }

// Reset implements simulator.Predictor.
func (p *PUEN) Reset() {}

// Predict implements simulator.Predictor.
func (p *PUEN) Predict(cp *simulator.Checkpoint) ([]bool, error) {
	if len(cp.FinishedX) == 0 || len(cp.RunningX) == 0 {
		return make([]bool, len(cp.RunningIDs)), nil
	}
	m, err := pu.FitElkanNoto(cp.FinishedX, cp.RunningX, p.seed+uint64(cp.Index))
	if err != nil {
		return nil, fmt.Errorf("pu-en: %w", err)
	}
	out := make([]bool, len(cp.RunningX))
	for i, x := range cp.RunningX {
		out[i] = m.ProbPositive(x) >= 0.5
	}
	return out, nil
}

// PUBG adapts the Mordelet–Vert bagging-SVM PU learner.
type PUBG struct {
	seed uint64
}

// NewPUBG constructs the adapter.
func NewPUBG(seed uint64) *PUBG { return &PUBG{seed: seed} }

// Name implements simulator.Predictor.
func (p *PUBG) Name() string { return "PU-BG" }

// Reset implements simulator.Predictor.
func (p *PUBG) Reset() {}

// Predict implements simulator.Predictor.
func (p *PUBG) Predict(cp *simulator.Checkpoint) ([]bool, error) {
	if len(cp.FinishedX) == 0 || len(cp.RunningX) == 0 {
		return make([]bool, len(cp.RunningIDs)), nil
	}
	cfg := pu.DefaultBaggingConfig()
	cfg.Seed = p.seed + uint64(cp.Index)
	m, err := pu.FitBagging(cp.FinishedX, cp.RunningX, cfg)
	if err != nil {
		return nil, fmt.Errorf("pu-bg: %w", err)
	}
	out := make([]bool, len(cp.RunningX))
	for i, x := range cp.RunningX {
		out[i] = m.ProbPositive(x) >= 0.5
	}
	return out, nil
}

// TobitPredictor adapts linear censored regression: finished tasks are
// uncensored observations, running tasks are right-censored at the current
// horizon; a task is flagged when the latent-latency estimate crosses
// tau_stra.
type TobitPredictor struct{}

// NewTobit constructs the adapter.
func NewTobit() *TobitPredictor { return &TobitPredictor{} }

// Name implements simulator.Predictor.
func (p *TobitPredictor) Name() string { return "Tobit" }

// Reset implements simulator.Predictor.
func (p *TobitPredictor) Reset() {}

// Predict implements simulator.Predictor.
func (p *TobitPredictor) Predict(cp *simulator.Checkpoint) ([]bool, error) {
	X, y, cens := censoredData(cp)
	if len(X) == 0 || len(cp.FinishedX) == 0 {
		return make([]bool, len(cp.RunningIDs)), nil
	}
	m, err := censored.FitTobit(X, y, cens, censored.DefaultTobitConfig())
	if err != nil {
		return nil, fmt.Errorf("tobit: %w", err)
	}
	out := make([]bool, len(cp.RunningX))
	for i, x := range cp.RunningX {
		out[i] = m.Predict(x) >= cp.TauStra
	}
	return out, nil
}

// GrabitPredictor adapts the boosted Tobit model (gbt.FitTobit).
type GrabitPredictor struct {
	seed uint64
}

// NewGrabit constructs the adapter.
func NewGrabit(seed uint64) *GrabitPredictor { return &GrabitPredictor{seed: seed} }

// Name implements simulator.Predictor.
func (p *GrabitPredictor) Name() string { return "Grabit" }

// Reset implements simulator.Predictor.
func (p *GrabitPredictor) Reset() {}

// Predict implements simulator.Predictor.
func (p *GrabitPredictor) Predict(cp *simulator.Checkpoint) ([]bool, error) {
	X, y, cens := censoredData(cp)
	if len(X) == 0 || len(cp.FinishedX) == 0 {
		return make([]bool, len(cp.RunningIDs)), nil
	}
	cfg := gbt.DefaultConfig()
	cfg.Seed = p.seed
	m, err := gbt.FitTobit(X, y, cens, 0, cfg)
	if err != nil {
		return nil, fmt.Errorf("grabit: %w", err)
	}
	out := make([]bool, len(cp.RunningX))
	for i, lat := range m.Compile().PredictBatch(cp.RunningX) {
		out[i] = lat >= cp.TauStra
	}
	return out, nil
}

// CoxPHPredictor adapts Cox proportional hazards: finished tasks are events
// at their latency, running tasks are censored at the horizon; a task is
// flagged when the predicted probability of surviving past tau_stra reaches
// 0.5.
type CoxPHPredictor struct{}

// NewCoxPH constructs the adapter.
func NewCoxPH() *CoxPHPredictor { return &CoxPHPredictor{} }

// Name implements simulator.Predictor.
func (p *CoxPHPredictor) Name() string { return "CoxPH" }

// Reset implements simulator.Predictor.
func (p *CoxPHPredictor) Reset() {}

// Predict implements simulator.Predictor.
func (p *CoxPHPredictor) Predict(cp *simulator.Checkpoint) ([]bool, error) {
	if len(cp.FinishedX) == 0 {
		return make([]bool, len(cp.RunningIDs)), nil
	}
	n := len(cp.FinishedX) + len(cp.RunningX)
	X := make([][]float64, 0, n)
	dur := make([]float64, 0, n)
	ev := make([]bool, 0, n)
	X = append(X, cp.FinishedX...)
	for _, l := range cp.FinishedY {
		dur = append(dur, l)
		ev = append(ev, true)
	}
	X = append(X, cp.RunningX...)
	for _, e := range cp.RunningElapsed {
		dur = append(dur, e)
		ev = append(ev, false)
	}
	m, err := censored.FitCoxPH(X, dur, ev, censored.DefaultCoxConfig())
	if err != nil {
		return nil, fmt.Errorf("coxph: %w", err)
	}
	out := make([]bool, len(cp.RunningX))
	for i, x := range cp.RunningX {
		out[i] = m.Survival(cp.TauStra, x) >= 0.5
	}
	return out, nil
}

// censoredData assembles the combined design for Tobit/Grabit: finished
// rows uncensored at their true latency, running rows right-censored at the
// checkpoint horizon.
func censoredData(cp *simulator.Checkpoint) (X [][]float64, y []float64, cens []bool) {
	n := len(cp.FinishedX) + len(cp.RunningX)
	X = make([][]float64, 0, n)
	y = make([]float64, 0, n)
	cens = make([]bool, 0, n)
	X = append(X, cp.FinishedX...)
	y = append(y, cp.FinishedY...)
	for range cp.FinishedX {
		cens = append(cens, false)
	}
	X = append(X, cp.RunningX...)
	for _, e := range cp.RunningElapsed {
		y = append(y, e)
		cens = append(cens, true)
	}
	return X, y, cens
}
