// Package repro benchmarks regenerate every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). Each benchmark runs the
// same pipeline as cmd/nurdbench at a bench-friendly scale and reports the
// headline quantity of that experiment as a custom metric, so
//
//	go test -bench=. -benchmem
//
// both exercises the full system and prints the reproduced results. Figures
// that derive from the accuracy pass (4-9) share one cached evaluation per
// trace; Table 3 and Figures 2-3 time the full 23-method replay itself.
package repro

import (
	"bytes"
	"io"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/gbt"
	"repro/internal/nurd"
	"repro/internal/predictor"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/simulator"
	"repro/internal/stats"
	"repro/internal/trace"
)

const (
	benchSeed = 42
	benchJobs = 3
)

// cachedEval memoizes one full accuracy pass per trace for the scheduling
// figures, which only re-derive JCT numbers from its plans.
var (
	evalOnce    sync.Once
	googleEval  *experiments.Evaluation
	alibabaEval *experiments.Evaluation
	evalErr     error
)

func sharedEvals(b *testing.B) (*experiments.Evaluation, *experiments.Evaluation) {
	b.Helper()
	evalOnce.Do(func() {
		facs := predictor.AllFactories()
		googleEval, evalErr = experiments.Run(
			experiments.GoogleSpec(benchJobs, benchSeed), facs, simulator.DefaultConfig(), benchSeed)
		if evalErr != nil {
			return
		}
		alibabaEval, evalErr = experiments.Run(
			experiments.AlibabaSpec(benchJobs, benchSeed), facs, simulator.DefaultConfig(), benchSeed)
	})
	if evalErr != nil {
		b.Fatal(evalErr)
	}
	return googleEval, alibabaEval
}

func nurdF1(ev *experiments.Evaluation) float64 {
	for _, m := range ev.Methods {
		if m.Name == "NURD" {
			return m.Avg().F1
		}
	}
	return 0
}

// BenchmarkFig1 regenerates the latency-distribution illustration (two
// profiles, histogram + threshold position).
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1(trace.ModeGoogle, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 runs the full Table 3 pipeline: all 23 methods replayed
// over Google-like and Alibaba-like jobs. Reports NURD's averaged F1 on each
// trace.
func BenchmarkTable3(b *testing.B) {
	facs := predictor.AllFactories()
	var g, a *experiments.Evaluation
	var err error
	for i := 0; i < b.N; i++ {
		g, err = experiments.Run(experiments.GoogleSpec(benchJobs, benchSeed), facs,
			simulator.DefaultConfig(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		a, err = experiments.Run(experiments.AlibabaSpec(benchJobs, benchSeed), facs,
			simulator.DefaultConfig(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(nurdF1(g), "nurd-f1-google")
	b.ReportMetric(nurdF1(a), "nurd-f1-alibaba")
}

// BenchmarkFig2 regenerates the Google F1-vs-normalized-time series (the
// accuracy pass plus the timeline aggregation). Reports NURD's final-time F1.
func BenchmarkFig2(b *testing.B) {
	facs := predictor.AllFactories()
	var ev *experiments.Evaluation
	var err error
	for i := 0; i < b.N; i++ {
		ev, err = experiments.Run(experiments.GoogleSpec(benchJobs, benchSeed), facs,
			simulator.DefaultConfig(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		_ = experiments.TimelineSeries(ev)
	}
	for _, m := range ev.Methods {
		if m.Name == "NURD" {
			b.ReportMetric(m.AvgF1At(10), "nurd-f1-final")
		}
	}
}

// BenchmarkFig3 is Figure 2's Alibaba counterpart.
func BenchmarkFig3(b *testing.B) {
	facs := predictor.AllFactories()
	var ev *experiments.Evaluation
	var err error
	for i := 0; i < b.N; i++ {
		ev, err = experiments.Run(experiments.AlibabaSpec(benchJobs, benchSeed), facs,
			simulator.DefaultConfig(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		_ = experiments.TimelineSeries(ev)
	}
	for _, m := range ev.Methods {
		if m.Name == "NURD" {
			b.ReportMetric(m.AvgF1At(10), "nurd-f1-final")
		}
	}
}

// benchReduction measures one JCT-reduction figure from the cached
// evaluation and reports NURD's reduction percentage.
func benchReduction(b *testing.B, ev *experiments.Evaluation, machines int) {
	var names []string
	var red []float64
	var err error
	for i := 0; i < b.N; i++ {
		names, red, err = experiments.Reduction(ev, machines)
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, n := range names {
		if n == "NURD" {
			b.ReportMetric(red[i], "nurd-reduction-pct")
		}
	}
}

// BenchmarkFig4 regenerates the unlimited-machine JCT reductions (Google).
func BenchmarkFig4(b *testing.B) {
	g, _ := sharedEvals(b)
	b.ResetTimer()
	benchReduction(b, g, 0)
}

// BenchmarkFig5 regenerates the unlimited-machine JCT reductions (Alibaba).
func BenchmarkFig5(b *testing.B) {
	_, a := sharedEvals(b)
	b.ResetTimer()
	benchReduction(b, a, 0)
}

var sweepCounts = []int{100, 300, 500, 700, 900}

// BenchmarkFig6 regenerates the machine-count sweep (Google).
func BenchmarkFig6(b *testing.B) {
	g, _ := sharedEvals(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.MachineSweep(g, sweepCounts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7 regenerates the machine-count sweep (Alibaba).
func BenchmarkFig7(b *testing.B) {
	_, a := sharedEvals(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.MachineSweep(a, sweepCounts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8 regenerates the over-machines average (Google); reports
// NURD's averaged reduction.
func BenchmarkFig8(b *testing.B) {
	g, _ := sharedEvals(b)
	b.ResetTimer()
	var names []string
	var avg []float64
	for i := 0; i < b.N; i++ {
		var sweep [][]float64
		var err error
		names, sweep, err = experiments.MachineSweep(g, sweepCounts)
		if err != nil {
			b.Fatal(err)
		}
		avg = experiments.AverageOverMachines(sweep)
	}
	for i, n := range names {
		if n == "NURD" {
			b.ReportMetric(avg[i], "nurd-avg-reduction-pct")
		}
	}
}

// BenchmarkFig9 regenerates the over-machines average (Alibaba).
func BenchmarkFig9(b *testing.B) {
	_, a := sharedEvals(b)
	b.ResetTimer()
	var names []string
	var avg []float64
	for i := 0; i < b.N; i++ {
		var sweep [][]float64
		var err error
		names, sweep, err = experiments.MachineSweep(a, sweepCounts)
		if err != nil {
			b.Fatal(err)
		}
		avg = experiments.AverageOverMachines(sweep)
	}
	for i, n := range names {
		if n == "NURD" {
			b.ReportMetric(avg[i], "nurd-avg-reduction-pct")
		}
	}
}

// --- Component micro-benchmarks (ablation-level costs) ---

func benchJob(b *testing.B) *trace.Job {
	b.Helper()
	cfg := trace.DefaultGoogleConfig(benchSeed)
	cfg.MinTasks, cfg.MaxTasks = 300, 300
	gen, err := trace.NewGenerator(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return gen.Next()
}

// BenchmarkTraceGen measures synthetic job generation throughput.
func BenchmarkTraceGen(b *testing.B) {
	cfg := trace.DefaultGoogleConfig(benchSeed)
	gen, err := trace.NewGenerator(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	tasks := 0
	for i := 0; i < b.N; i++ {
		tasks += gen.Next().NumTasks()
	}
	b.ReportMetric(float64(tasks)/float64(b.N), "tasks/job")
}

// BenchmarkNURDCheckpoint measures one NURD checkpoint update+predict cycle
// (the per-checkpoint online cost of Algorithm 1).
func BenchmarkNURDCheckpoint(b *testing.B) {
	job := benchJob(b)
	sim, err := simulator.New(job, simulator.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	cp := sim.At(3, nil)
	if len(cp.FinishedX) == 0 || len(cp.RunningX) == 0 {
		b.Skip("degenerate checkpoint")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := nurd.New(nurd.DefaultConfig())
		if err := m.Init(cp.FinishedX, cp.RunningX); err != nil {
			b.Fatal(err)
		}
		if err := m.Update(cp.FinishedX, cp.FinishedY, cp.RunningX); err != nil {
			b.Fatal(err)
		}
		for _, x := range cp.RunningX {
			if _, err := m.Predict(x); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkGBTFit measures the latency-model refit, the dominant cost inside
// NURD and GBTR.
func BenchmarkGBTFit(b *testing.B) {
	rng := stats.NewRNG(benchSeed)
	n, d := 500, 15
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = make([]float64, d)
		for j := range X[i] {
			X[i][j] = rng.Normal(0, 1)
		}
		y[i] = X[i][0]*3 + X[i][1] + rng.Normal(0, 0.2)
	}
	cfg := gbt.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gbt.FitRegressor(X, y, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPredictSetup fits a warm-grown ensemble (the shape serving carries
// after a run of Extend refits) over a realistic monitoring width, plus a
// batch of running-task rows to predict.
func benchPredictSetup(b *testing.B) (*gbt.Model, [][]float64) {
	b.Helper()
	rng := stats.NewRNG(benchSeed)
	n, d := 1500, 15
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = make([]float64, d)
		for j := range X[i] {
			X[i][j] = rng.Normal(0, 1)
		}
		y[i] = X[i][0]*3 + X[i][1] - 2*X[i][7] + rng.Normal(0, 0.2)
	}
	cfg := gbt.DefaultConfig()
	cfg.Seed = benchSeed
	m, err := gbt.FitRegressor(X, y, cfg)
	if err != nil {
		b.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		if m, err = m.Extend(X, y, 8, cfg); err != nil {
			b.Fatal(err)
		}
	}
	rows := make([][]float64, 512)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = rng.Normal(0, 1)
		}
	}
	return m, rows
}

// BenchmarkPredictTree is the per-tree batched predict the serving layer
// rode before the flat engine: every row walks each tree's own node slice.
// Reports ns/row; CI gates BenchmarkPredictFlat against it as a same-run
// ratio (flat must be well under per-tree time — hardware-independent).
func BenchmarkPredictTree(b *testing.B) {
	m, rows := benchPredictSetup(b)
	out := make([]float64, len(rows))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r, x := range rows {
			out[r] = m.Predict(x)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(rows)), "ns/row")
	sink = out[0]
}

// BenchmarkPredictFlat is the compiled path: the same ensemble flattened
// into one contiguous SoA node table, batch walked task-major with a
// reused scratch buffer (exactly what nurd.Model.PredictBatch runs per
// checkpoint). Bit-identical outputs, fewer cache misses, no allocation.
func BenchmarkPredictFlat(b *testing.B) {
	m, rows := benchPredictSetup(b)
	f := m.Compile()
	var out []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = f.PredictBatchInto(rows, out)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(rows)), "ns/row")
	sink = out[0]
}

// sink defeats dead-code elimination of benchmark predict loops.
var sink float64

// benchRefit measures the per-refit latency of NURD's checkpoint refit over
// a full job's gated checkpoint sequence (the hot path the serving layer's
// async pipeline runs on its workers): at each checkpoint the models are
// refitted on the accumulated finished set, from scratch or warm-started
// from the previous checkpoint's ensemble. Reports ms/refit so the warm vs
// scratch comparison (BENCH_serve_refit.json; ratio-gated in CI) reads
// directly.
func benchRefit(b *testing.B, cfg nurd.Config) {
	job := benchJob(b)
	sim, err := simulator.New(job, simulator.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	// The fixed view sequence both strategies fit: every checkpoint past the
	// warm gate, no terminations (identical data regardless of verdicts).
	var views []*simulator.Checkpoint
	warm := simulator.WarmCount(job.NumTasks(), sim.Cfg.WarmFrac)
	for k := 1; k <= sim.Cfg.Checkpoints; k++ {
		cp := sim.At(k, nil)
		if len(cp.FinishedIDs) >= warm && len(cp.RunningIDs) > 0 {
			views = append(views, cp)
		}
	}
	if len(views) < 3 {
		b.Skip("degenerate job: too few gated checkpoints")
	}
	cfg.Seed = benchSeed
	b.ResetTimer()
	refits := 0
	for i := 0; i < b.N; i++ {
		m := nurd.New(cfg)
		if err := m.Init(views[0].FinishedX, views[0].RunningX); err != nil {
			b.Fatal(err)
		}
		for _, cp := range views {
			if err := m.Refit(cp.FinishedX, cp.FinishedY, cp.RunningX); err != nil {
				b.Fatal(err)
			}
			refits++
		}
	}
	b.ReportMetric(float64(b.Elapsed().Milliseconds())/float64(refits), "ms/refit")
}

// BenchmarkRefitScratch is the pre-pipeline refit cost: every checkpoint
// retrains the GBT from scratch (the paper's Table 3 configuration).
func BenchmarkRefitScratch(b *testing.B) { benchRefit(b, nurd.DefaultConfig()) }

// BenchmarkRefitWarm is the warm-started refit: each checkpoint extends the
// previous ensemble by nurd.DefaultWarmRounds trees instead of refitting
// gbt.DefaultConfig().NumTrees from zero.
func BenchmarkRefitWarm(b *testing.B) { benchRefit(b, nurd.DefaultWarmConfig()) }

// BenchmarkFullReplayNURD measures a complete 10-checkpoint online replay of
// one 300-task job through NURD.
func BenchmarkFullReplayNURD(b *testing.B) {
	job := benchJob(b)
	sim, err := simulator.New(job, simulator.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var f1 float64
	for i := 0; i < b.N; i++ {
		res, err := simulator.Evaluate(sim, predictor.NewNURD(benchSeed))
		if err != nil {
			b.Fatal(err)
		}
		f1 = res.Final.F1()
	}
	b.ReportMetric(f1, "f1")
}

// BenchmarkServeThroughput measures the online serving path end to end:
// several jobs' monitoring streams ingested concurrently into a
// serve.Server running per-job NURD models, the heavy-traffic scenario of
// cmd/nurdserve. Reports sustained events/s and the mean refit latency.
// benchServeConfig pins the serving benchmarks to 8 shards (and, under a
// WAL, 8 segment streams) so the WAL-on/off comparison in
// BENCH_serve_wal.json measures the sharded durability path the roadmap
// targets, independent of the host's core count.
func benchServeConfig() serve.Config {
	cfg := serve.DefaultConfig()
	cfg.Shards = 8
	return cfg
}

func BenchmarkServeThroughput(b *testing.B) {
	const numJobs = 4
	gen, err := trace.NewGenerator(trace.DefaultGoogleConfig(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	jobs := gen.Jobs(numJobs)
	sims := make([]*simulator.Sim, numJobs)
	streams := make([][]serve.Event, numJobs)
	totalEvents := 0
	for i, j := range jobs {
		if sims[i], err = simulator.New(j, simulator.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
		streams[i] = serve.JobEvents(j, sims[i])
		totalEvents += len(streams[i])
	}
	b.ResetTimer()
	var lastServer *serve.Server
	for i := 0; i < b.N; i++ {
		sv := serve.NewServer(benchServeConfig())
		var wg sync.WaitGroup
		for ji := range jobs {
			if err := sv.StartJob(serve.SpecFor(sims[ji], benchSeed+uint64(ji)), nil); err != nil {
				b.Fatal(err)
			}
			wg.Add(1)
			go func(ji int) {
				defer wg.Done()
				if err := sv.IngestBatch(streams[ji]); err != nil {
					b.Error(err)
				}
			}(ji)
		}
		wg.Wait()
		lastServer = sv
	}
	b.StopTimer()
	b.ReportMetric(float64(totalEvents)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(float64(lastServer.Stats().RefitMean().Microseconds())/1e3, "refit-mean-ms")
}

// BenchmarkWireCodec measures the serving wire format end to end: one
// job's full monitoring stream encoded to frames and decoded back. Reports
// sustained events/s through encode+decode and the encoded bytes per event.
func BenchmarkWireCodec(b *testing.B) {
	job := benchJob(b)
	sim, err := simulator.New(job, simulator.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	spec := serve.SpecFor(sim, benchSeed)
	events := serve.JobEvents(job, sim)
	var dump bytes.Buffer
	if err := serve.WriteDump(&dump, []serve.JobSpec{spec}, events); err != nil {
		b.Fatal(err)
	}
	enc := dump.Bytes()
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		buf.Grow(len(enc))
		if err := serve.WriteDump(&buf, []serve.JobSpec{spec}, events); err != nil {
			b.Fatal(err)
		}
		wr := serve.NewWireReader(bytes.NewReader(buf.Bytes()))
		n := 0
		for {
			_, _, err := wr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			n++
		}
		if n != len(events)+1 {
			b.Fatalf("decoded %d elements, want %d", n, len(events)+1)
		}
	}
	b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(float64(len(enc))/float64(len(events)), "bytes/event")
}

// BenchmarkSnapshotRestore measures the durability round-trip: snapshotting
// a live server carrying several streamed jobs and restoring it (which
// refits every per-job model from the recorded checkpoint history). Reports
// the snapshot size.
func BenchmarkSnapshotRestore(b *testing.B) {
	const numJobs = 4
	gen, err := trace.NewGenerator(trace.DefaultGoogleConfig(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	jobs := gen.Jobs(numJobs)
	sv := serve.NewServer(serve.DefaultConfig())
	for i, j := range jobs {
		sim, err := simulator.New(j, simulator.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := sv.StartJob(serve.SpecFor(sim, benchSeed+uint64(i)), nil); err != nil {
			b.Fatal(err)
		}
		if err := sv.IngestBatch(serve.JobEvents(j, sim)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	var snapLen int
	for i := 0; i < b.N; i++ {
		var snap bytes.Buffer
		if err := sv.Snapshot(&snap); err != nil {
			b.Fatal(err)
		}
		snapLen = snap.Len()
		restored, err := serve.RestoreServer(bytes.NewReader(snap.Bytes()), serve.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if len(restored.JobIDs()) != numJobs {
			b.Fatalf("restored %d jobs, want %d", len(restored.JobIDs()), numJobs)
		}
	}
	b.ReportMetric(float64(snapLen)/1024, "snapshot-KiB")
}

// BenchmarkServeThroughputWAL is BenchmarkServeThroughput with a write-ahead
// log under the server (group-commit fsync, the cmd/nurdserve -wal
// defaults): the same 4-job concurrent stream, every accepted event logged
// durably before acknowledgment. Comparing its events/s against the no-WAL
// baseline prices the durability guarantee; the acceptance bar for the WAL
// is staying within 25% of the baseline.
func BenchmarkServeThroughputWAL(b *testing.B) {
	benchServeThroughputWAL(b, serve.WALOptions{SyncEvery: 2 * time.Millisecond, Streams: 8})
}

// BenchmarkServeThroughputWALBatched is the same durable stream through the
// batched cross-stream commit path (cmd/nurdserve -wal-commit-batch): each
// group-commit window stages every dirty stream's tail into one shared
// commit file and fsyncs once, so the 8-stream fan-out no longer multiplies
// fsyncs. The extra metrics are the tentpole's measured claim: fsyncs/window
// (commit fsyncs plus amortized absorb fsyncs per window; the per-stream
// writer pays streams/window instead) and the per-window dirty-stream
// fan-out it decoupled from.
func BenchmarkServeThroughputWALBatched(b *testing.B) {
	benchServeThroughputWAL(b, serve.WALOptions{SyncEvery: 2 * time.Millisecond, Streams: 8, CommitBatch: true})
}

func benchServeThroughputWAL(b *testing.B, walOpts serve.WALOptions) {
	const numJobs = 4
	gen, err := trace.NewGenerator(trace.DefaultGoogleConfig(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	jobs := gen.Jobs(numJobs)
	sims := make([]*simulator.Sim, numJobs)
	streams := make([][]serve.Event, numJobs)
	totalEvents := 0
	for i, j := range jobs {
		if sims[i], err = simulator.New(j, simulator.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
		streams[i] = serve.JobEvents(j, sims[i])
		totalEvents += len(streams[i])
	}
	b.ResetTimer()
	var lastWAL serve.WALStats
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		b.StartTimer()
		sv, wal, _, err := serve.Recover(dir, benchServeConfig(), walOpts)
		if err != nil {
			b.Fatal(err)
		}
		var wg sync.WaitGroup
		for ji := range jobs {
			if err := sv.StartJob(serve.SpecFor(sims[ji], benchSeed+uint64(ji)), nil); err != nil {
				b.Fatal(err)
			}
			wg.Add(1)
			go func(ji int) {
				defer wg.Done()
				if err := sv.IngestBatch(streams[ji]); err != nil {
					b.Error(err)
				}
			}(ji)
		}
		wg.Wait()
		if err := wal.Close(); err != nil {
			b.Fatal(err)
		}
		lastWAL = *sv.Stats().WAL
	}
	b.StopTimer()
	b.ReportMetric(float64(totalEvents)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(float64(lastWAL.Bytes)/float64(lastWAL.Appends), "wal-bytes/event")
	if lastWAL.CommitBatched && lastWAL.CommitWindows > 0 {
		b.ReportMetric(float64(lastWAL.Syncs)/float64(lastWAL.CommitWindows), "fsyncs/window")
		b.ReportMetric(float64(lastWAL.CommitRecords)/float64(lastWAL.CommitWindows), "streams/window")
	}
}

// BenchmarkWALRecovery measures point-in-time recovery against WAL length:
// a 4-job stream logged with no snapshot at all, rebuilt from the log alone
// (the worst case — a snapshot only shortens the replayed tail). Reports
// recovered events/s and the log size.
func BenchmarkWALRecovery(b *testing.B) {
	const numJobs = 4
	gen, err := trace.NewGenerator(trace.DefaultGoogleConfig(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	jobs := gen.Jobs(numJobs)
	dir := b.TempDir()
	sv, wal, _, err := serve.Recover(dir, benchServeConfig(),
		serve.WALOptions{SyncEvery: 2 * time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	records := 0
	for i, j := range jobs {
		sim, err := simulator.New(j, simulator.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := sv.StartJob(serve.SpecFor(sim, benchSeed+uint64(i)), nil); err != nil {
			b.Fatal(err)
		}
		evs := serve.JobEvents(j, sim)
		if err := sv.IngestBatch(evs); err != nil {
			b.Fatal(err)
		}
		records += 1 + len(evs)
	}
	walBytes := float64(sv.Stats().WAL.Bytes)
	if err := wal.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sv2, wal2, rst, err := serve.Recover(dir, benchServeConfig(), serve.WALOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if int(rst.NextLSN)-1 != records {
			b.Fatalf("recovered %d records, want %d", rst.NextLSN-1, records)
		}
		wal2.Close()
		_ = sv2
		b.StopTimer()
		// Recovery opens a fresh (empty) segment; drop it so the next
		// iteration replays an identical directory.
		ents, err := os.ReadDir(dir)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range ents {
			name := e.Name()
			if strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".seg") {
				if fi, err := e.Info(); err == nil && fi.Size() <= 32 {
					os.Remove(dir + "/" + name)
				}
			}
		}
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "replayed-events/s")
	b.ReportMetric(walBytes/1024, "wal-KiB")
}

// BenchmarkWALRecoveryBatched measures recovery over the batched-commit
// layout at its worst: the writer crashed with live commit files and
// segments never hardened by an absorb, so every iteration pays the full
// reconciliation (patch segments from the commit image, re-materialize them
// durably, remove the commit files) before the k-way replay. The crashed
// directory image is kept in memory and re-materialized per iteration,
// because the first recovery repairs it in place.
func BenchmarkWALRecoveryBatched(b *testing.B) {
	const numJobs = 4
	gen, err := trace.NewGenerator(trace.DefaultGoogleConfig(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	jobs := gen.Jobs(numJobs)
	dir := b.TempDir()
	// SyncEvery an hour: windows come only from the explicit per-job Sync
	// calls, so the commit files deterministically cover the whole log.
	sv, wal, _, err := serve.Recover(dir, benchServeConfig(),
		serve.WALOptions{SyncEvery: time.Hour, Streams: 8, CommitBatch: true})
	if err != nil {
		b.Fatal(err)
	}
	records := 0
	for i, j := range jobs {
		sim, err := simulator.New(j, simulator.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := sv.StartJob(serve.SpecFor(sim, benchSeed+uint64(i)), nil); err != nil {
			b.Fatal(err)
		}
		evs := serve.JobEvents(j, sim)
		if err := sv.IngestBatch(evs); err != nil {
			b.Fatal(err)
		}
		if err := wal.Sync(); err != nil {
			b.Fatal(err)
		}
		records += 1 + len(evs)
	}
	walBytes := float64(sv.Stats().WAL.Bytes)
	// Capture the live image before Close: Close's absorb hardens the
	// segments and removes the commit files, which is exactly the state this
	// benchmark must NOT recover from.
	image := map[string][]byte{}
	commitFiles := 0
	ents, err := os.ReadDir(dir)
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(dir + "/" + e.Name())
		if err != nil {
			b.Fatal(err)
		}
		image[e.Name()] = data
		if strings.HasPrefix(e.Name(), "commit-") {
			commitFiles++
		}
	}
	if commitFiles == 0 {
		b.Fatal("no live commit files to recover through")
	}
	if err := wal.Close(); err != nil {
		b.Fatal(err)
	}
	restore := func() {
		ents, err := os.ReadDir(dir)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range ents {
			os.Remove(dir + "/" + e.Name())
		}
		for name, data := range image {
			if err := os.WriteFile(dir+"/"+name, data, 0o644); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		restore()
		b.StartTimer()
		sv2, wal2, rst, err := serve.Recover(dir, benchServeConfig(), serve.WALOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if int(rst.NextLSN)-1 != records {
			b.Fatalf("recovered %d records, want %d", rst.NextLSN-1, records)
		}
		if rst.CommitFiles != commitFiles {
			b.Fatalf("reconciled %d commit files, %d were live", rst.CommitFiles, commitFiles)
		}
		wal2.Close()
		_ = sv2
	}
	b.StopTimer()
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "replayed-events/s")
	b.ReportMetric(walBytes/1024, "wal-KiB")
	b.ReportMetric(float64(commitFiles), "commit-files")
}

// BenchmarkSchedulerMitigated measures the event-driven mitigation scheduler
// on a 5000-task job with 500 machines.
func BenchmarkSchedulerMitigated(b *testing.B) {
	rng := stats.NewRNG(benchSeed)
	n := 5000
	lat := make([]float64, n)
	for i := range lat {
		lat[i] = rng.Exponential(0.1)
	}
	plan := make(map[int]float64)
	for i := 0; i < n/10; i++ {
		plan[rng.Intn(n)] = rng.Uniform(1, 5)
	}
	pool := []float64{5, 8, 10, 12}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Mitigated(lat, plan, pool, sched.Config{Machines: 500, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
